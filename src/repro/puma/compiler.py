"""Lowering of Puma plans into fused, cached executable programs.

"Unlike traditional relational databases, Puma is optimized for compiled
queries, not for ad-hoc analysis" (Section 2.2). The planner already
binds expressions at deploy time; this module goes one step further and
lowers each :class:`~repro.puma.planner.AppPlan` into an immutable
:class:`ExecutablePlan` — per table, one fused batch program that runs
filter → window assignment → group-key extraction → aggregate folds in
a single specialized pass, with monomorphic closures generated per
(aggregate, argument) pair instead of ``AggregateFunction.update`` ABC
dispatch per row:

- aggregates that have a columnar kernel (count/sum/avg/min/max) fold
  each group's value column through the same vectorized kernels Scuba's
  query engine uses;
- the rest (topk, approx_distinct, stddev, approx_percentile) go
  through the aggregate's bulk :meth:`AggregateFunction.fold`, which
  pays its per-batch costs (sorts, sketch materialization) once per
  group instead of once per value;
- aggregates reading the same argument expression (``sum(ms), avg(ms),
  max(ms)``) share one evaluated value column per group.

Each fold produces a per-batch *delta* — the monoid fold of just that
batch's rows starting from the identity — which the app runtime merges
into its window state (delta-based incremental maintenance; see
``DESIGN.md``). The Hive backfill path consumes the same compiled
programs, keeping the paper's Section 4.5 "same code in streaming and
batch" property at the executable-plan level.

Plans are cached in a :class:`PlanCache` keyed by app name, with
identity-based invalidation on redefinition and hit/miss/invalidation
counters — the gnitz ``ProgramCache``/``ExecutablePlan`` arrangement.
"""

from __future__ import annotations

from itertools import repeat
from typing import Any, Callable

from repro.core.windows import aligned_start
from repro.errors import PlanningError
from repro.puma.ast import Column, Expression
from repro.puma.functions import get_columnar_kernel
from repro.puma.planner import AppPlan, BoundAggregate, TablePlan
from repro.runtime.metrics import MetricsRegistry

Row = dict[str, Any]
Evaluator = Callable[[Row], Any]

#: Window key used for tables without a window clause (all-time totals).
GLOBAL_WINDOW = 0.0


def _compile_group_key(group_keys: tuple[tuple[str, Evaluator], ...],
                       exprs: tuple[Expression, ...] = ()
                       ) -> Callable[[Row], tuple]:
    """A monomorphic row -> group-key closure for the table's arity.

    When the source ASTs show every key is a plain column reference —
    the overwhelmingly common shape — the closure reads the row dict
    directly instead of going through the generic compiled evaluators
    (one call per row instead of one per key per row).
    """
    if len(exprs) == len(group_keys) and all(
            isinstance(e, Column) for e in exprs):
        names = tuple(e.name for e in exprs)
        if len(names) == 1:
            only_name = names[0]
            return lambda row: (row.get(only_name),)
        if len(names) == 2:
            first_name, second_name = names
            return lambda row: (row.get(first_name), row.get(second_name))
    evaluators = tuple(evaluator for _, evaluator in group_keys)
    if not evaluators:
        empty: tuple = ()
        return lambda row: empty
    if len(evaluators) == 1:
        only = evaluators[0]
        return lambda row: (only(row),)
    if len(evaluators) == 2:
        first, second = evaluators
        return lambda row: (first(row), second(row))
    return lambda row: tuple(evaluator(row) for evaluator in evaluators)


def _assign_arg_slots(aggregates: tuple[BoundAggregate, ...]
                      ) -> tuple[tuple[Evaluator, ...],
                                 tuple[int | None, ...],
                                 tuple[str | None, ...]]:
    """Deduplicate aggregate arguments into shared value-column slots.

    Two aggregates whose ``arg_expr`` ASTs compare equal read the same
    value column, so it is evaluated once per row, not once per
    aggregate. ``None`` marks count(*)-style aggregates that take no
    argument. The third result names each slot's source column when its
    AST is a plain column reference — the batch loop then fills the
    value column with direct dict reads instead of evaluator calls.
    """
    evaluators: list[Evaluator] = []
    expressions: list[Any] = []
    slots: list[int | None] = []
    for bound in aggregates:
        if bound.arg is None:
            slots.append(None)
            continue
        slot = None
        if bound.arg_expr is not None:
            for index, expression in enumerate(expressions):
                if expression is not None and expression == bound.arg_expr:
                    slot = index
                    break
        if slot is None:
            slot = len(evaluators)
            evaluators.append(bound.arg)
            expressions.append(bound.arg_expr)
        slots.append(slot)
    columns = tuple(
        expression.name if isinstance(expression, Column) else None
        for expression in expressions
    )
    return tuple(evaluators), tuple(slots), columns


class CompiledAggregate:
    """One aggregate lowered to monomorphic closures.

    ``fold_group(values, count)`` returns the *delta* state for one
    (window, group) cell of one batch: the monoid fold of the group's
    value column starting from the identity. ``create``/``merge``/
    ``result`` close over the function and extra args once, so the hot
    paths never re-resolve them through the ABC.
    """

    __slots__ = ("alias", "function", "extra_args", "arg_slot",
                 "create", "merge", "result", "fold_group")

    def __init__(self, bound: BoundAggregate, arg_slot: int | None) -> None:
        function = bound.function
        extra = bound.extra_args
        self.alias = bound.alias
        self.function = function
        self.extra_args = extra
        self.arg_slot = arg_slot
        self.create = lambda: function.create(extra)
        self.merge = lambda left, right: function.merge(left, right, extra)
        self.result = lambda state: function.result(state, extra)
        kernel = get_columnar_kernel(function.name)
        counting = bound.arg is None  # count(*): every row contributes 1
        if kernel is not None:
            # Per-group slices have one implicit group (codes=None), the
            # kernels' fastest shape; the kernel contract guarantees the
            # state is identical to the per-row update fold.
            kernel_fold = kernel.fold
            if counting:
                self.fold_group = (
                    lambda values, count: kernel_fold(None, None, count)[0])
            else:
                self.fold_group = (
                    lambda values, count: kernel_fold(None, values, count)[0])
        else:
            bulk_fold = function.fold
            if counting:
                self.fold_group = (
                    lambda values, count: bulk_fold(
                        function.create(extra), repeat(1, count), extra))
            else:
                self.fold_group = (
                    lambda values, count: bulk_fold(
                        function.create(extra), values, extra))


class CompiledTable:
    """One table lowered to a fused batch program.

    Aggregation tables execute through :meth:`fold_batch`, filter
    tables through :meth:`project_batch`; both run the table's whole
    pipeline over a chunk in one specialized pass.
    """

    __slots__ = ("name", "kind", "predicate", "window_seconds",
                 "group_columns", "group_key", "single_group_column",
                 "aggregates", "arg_evaluators", "arg_columns",
                 "projections", "key_alias", "time_column")

    def __init__(self, table: TablePlan, time_column: str) -> None:
        self.name = table.name
        self.kind = table.kind
        self.predicate = table.predicate
        self.window_seconds = table.window_seconds
        self.group_columns = tuple(column for column, _ in table.group_keys)
        self.group_key = _compile_group_key(table.group_keys,
                                            table.group_key_exprs)
        exprs = table.group_key_exprs
        # The hottest shape — GROUP BY one plain column — gets its key
        # read inlined into the batch loop (no closure call per row).
        self.single_group_column = (
            exprs[0].name
            if (len(exprs) == 1 and len(table.group_keys) == 1
                and isinstance(exprs[0], Column))
            else None)
        self.arg_evaluators, slots, self.arg_columns = _assign_arg_slots(
            table.aggregates)
        self.aggregates = tuple(
            CompiledAggregate(bound, slot)
            for bound, slot in zip(table.aggregates, slots)
        )
        self.projections = table.projections
        self.key_alias = (table.projections[0][0]
                          if table.projections else None)
        self.time_column = time_column

    def fold_batch(self, rows: list[Row]
                   ) -> dict[tuple[float, tuple], dict[str, Any]]:
        """Filter → window → group → aggregate, fused over one chunk.

        Returns ``{(window_start, group_key): {alias: delta}}`` where
        each delta is the monoid fold of just this chunk's rows for
        that cell. Row order is preserved within each group, so
        order-sensitive folds match the per-message oracle.
        """
        predicate = self.predicate
        if predicate is not None:
            rows = [row for row in rows if predicate(row)]
        if not rows:
            return {}
        time_column = self.time_column
        window_seconds = self.window_seconds
        group_key = self.group_key
        single_column = self.single_group_column
        aligned = aligned_start
        groups: dict[tuple[float, tuple], list[Row]] = {}
        if single_column is not None:
            for row in rows:
                event_time = row.get(time_column)
                if event_time is None:
                    continue  # rows without an event time aren't windowed
                cell = (GLOBAL_WINDOW if window_seconds is None
                        else aligned(float(event_time), window_seconds),
                        (row.get(single_column),))
                bucket = groups.get(cell)
                if bucket is None:
                    groups[cell] = [row]
                else:
                    bucket.append(row)
        else:
            for row in rows:
                event_time = row.get(time_column)
                if event_time is None:
                    continue  # rows without an event time aren't windowed
                cell = (GLOBAL_WINDOW if window_seconds is None
                        else aligned(float(event_time), window_seconds),
                        group_key(row))
                bucket = groups.get(cell)
                if bucket is None:
                    groups[cell] = [row]
                else:
                    bucket.append(row)
        if not groups:
            return {}
        aggregates = self.aggregates
        arg_evaluators = self.arg_evaluators
        arg_columns = self.arg_columns
        deltas: dict[tuple[float, tuple], dict[str, Any]] = {}
        for cell, grouped in groups.items():
            count = len(grouped)
            columns: list[list | None] = [None] * len(arg_evaluators)
            delta: dict[str, Any] = {}
            for aggregate in aggregates:
                slot = aggregate.arg_slot
                if slot is None:
                    values = None
                else:
                    values = columns[slot]
                    if values is None:
                        name = arg_columns[slot]
                        if name is not None:  # plain column: direct reads
                            values = [row.get(name) for row in grouped]
                        else:
                            evaluate = arg_evaluators[slot]
                            values = [evaluate(row) for row in grouped]
                        columns[slot] = values
                delta[aggregate.alias] = aggregate.fold_group(values, count)
            deltas[cell] = delta
        return deltas

    def project_batch(self, rows: list[Row]) -> list[tuple[Row, str]]:
        """Filter → project for a filter table: (record, scribe key)."""
        predicate = self.predicate
        if predicate is not None:
            rows = [row for row in rows if predicate(row)]
        projections = self.projections
        time_column = self.time_column
        key_alias = self.key_alias
        out: list[tuple[Row, str]] = []
        for row in rows:
            record = {alias: evaluator(row)
                      for alias, evaluator in projections}
            record.setdefault(time_column, row.get(time_column))
            out.append((record, str(record.get(key_alias, ""))))
        return out


class ExecutablePlan:
    """An immutable, fully lowered program for one Puma app.

    Holds the source :class:`AppPlan` it was compiled from — the cache
    uses that identity to detect redefinition, and consumers that need
    planner-level metadata (the interpreted oracle, parallel combines)
    reach it through ``source``.
    """

    __slots__ = ("source", "name", "time_column", "tables", "_by_name")

    def __init__(self, source: AppPlan) -> None:
        self.source = source
        self.name = source.name
        self.time_column = source.time_column
        self.tables = tuple(
            CompiledTable(table, source.time_column)
            for table in source.tables
        )
        self._by_name = {table.name: table for table in self.tables}

    def table(self, name: str) -> CompiledTable:
        try:
            return self._by_name[name]
        except KeyError:
            raise PlanningError(
                f"app {self.name!r} has no table {name!r}") from None


def compile_plan(source: AppPlan) -> ExecutablePlan:
    """Lower an AppPlan into an :class:`ExecutablePlan` (uncached)."""
    return ExecutablePlan(source)


class PlanCache:
    """Compiled plans keyed by app name, invalidated on redefinition.

    The app name is the program id: deploying a *different* AppPlan
    object under a name that is already cached counts as a
    redefinition — the stale entry is invalidated and the new program
    compiled. Explicit :meth:`invalidate` covers deletion. Counters:
    ``puma.plan_cache.hits`` / ``.misses`` / ``.invalidations``.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._plans: dict[str, ExecutablePlan] = {}
        self._hits = self.metrics.counter("puma.plan_cache.hits")
        self._misses = self.metrics.counter("puma.plan_cache.misses")
        self._invalidations = self.metrics.counter(
            "puma.plan_cache.invalidations")

    def get(self, source: AppPlan) -> ExecutablePlan:
        """The compiled program for ``source``, compiling on miss."""
        cached = self._plans.get(source.name)
        if cached is not None:
            if cached.source is source:
                self._hits.increment()
                return cached
            # Same name, different program: a redefinition.
            self._invalidations.increment()
        self._misses.increment()
        executable = compile_plan(source)
        self._plans[source.name] = executable
        return executable

    def invalidate(self, name: str) -> bool:
        """Drop one app's cached program (deletion); True if present."""
        if self._plans.pop(name, None) is None:
            return False
        self._invalidations.increment()
        return True

    def invalidate_all(self) -> int:
        """Drop every cached program; returns how many were dropped."""
        count = len(self._plans)
        for name in list(self._plans):
            self.invalidate(name)
        return count

    def __len__(self) -> int:
        return len(self._plans)

    def stats(self) -> dict[str, float]:
        return {
            "hits": self._hits.value,
            "misses": self._misses.value,
            "invalidations": self._invalidations.value,
        }
