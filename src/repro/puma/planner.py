"""Compilation of parsed PQL into an executable plan.

"Unlike traditional relational databases, Puma is optimized for compiled
queries, not for ad-hoc analysis" (Section 2.2): an app is planned once
at deploy time — expressions compile to Python closures, aggregates bind
to their function objects, column references are validated against the
input table — and then runs for months.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import PlanningError
from repro.puma.ast import (
    Aggregate,
    BinaryOp,
    Column,
    CreateInputTable,
    CreateTable,
    Expression,
    FunctionCall,
    InList,
    Literal,
    PqlProgram,
    Select,
    UnaryOp,
)
from repro.puma.functions import AggregateFunction, get_aggregate, get_udf

Row = dict[str, Any]
Evaluator = Callable[[Row], Any]


# -- expression compilation ------------------------------------------------------


def compile_expression(expression: Expression,
                       columns: tuple[str, ...]) -> Evaluator:
    """Compile an expression into a row -> value closure.

    Column references are checked against ``columns`` at compile time, so
    a typo fails at deploy, not at the first event.
    """
    if isinstance(expression, Literal):
        value = expression.value
        return lambda row: value
    if isinstance(expression, Column):
        name = expression.name
        if name not in columns:
            raise PlanningError(
                f"unknown column {name!r}; input columns are {list(columns)}"
            )
        return lambda row: row.get(name)
    if isinstance(expression, UnaryOp):
        inner = compile_expression(expression.operand, columns)
        if expression.op == "NOT":
            return lambda row: not inner(row)
        return lambda row: -inner(row)
    if isinstance(expression, InList):
        needle = compile_expression(expression.needle, columns)
        member_evals = [compile_expression(v, columns)
                        for v in expression.values]
        negated = expression.negated
        if all(isinstance(v, Literal) for v in expression.values):
            constants = frozenset(v.value for v in expression.values)  # type: ignore[union-attr]
            if negated:
                return lambda row: needle(row) not in constants
            return lambda row: needle(row) in constants
        if negated:
            return lambda row: needle(row) not in {e(row) for e in member_evals}
        return lambda row: needle(row) in {e(row) for e in member_evals}
    if isinstance(expression, FunctionCall):
        func = get_udf(expression.name)
        arg_evals = [compile_expression(a, columns) for a in expression.args]
        return lambda row: func(*(e(row) for e in arg_evals))
    if isinstance(expression, BinaryOp):
        return _compile_binary(expression, columns)
    raise PlanningError(f"cannot compile expression {expression!r}")


def _compile_binary(expression: BinaryOp,
                    columns: tuple[str, ...]) -> Evaluator:
    left = compile_expression(expression.left, columns)
    right = compile_expression(expression.right, columns)
    op = expression.op
    table: dict[str, Callable[[Any, Any], Any]] = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
        "%": lambda a, b: a % b,
        "AND": lambda a, b: bool(a) and bool(b),
        "OR": lambda a, b: bool(a) or bool(b),
    }
    if op not in table:
        raise PlanningError(f"unknown operator {op!r}")
    func = table[op]
    return lambda row: func(left(row), right(row))


# -- plans ----------------------------------------------------------------------


@dataclass(frozen=True)
class BoundAggregate:
    """One aggregate projection, bound to its function object.

    ``arg_expr`` keeps the argument's source AST next to its compiled
    evaluator: AST nodes are frozen dataclasses with structural
    equality, so the plan compiler can recognize aggregates that read
    the same expression (``sum(ms), avg(ms), max(ms)``) and evaluate it
    once per row instead of once per aggregate.
    """

    alias: str
    function: AggregateFunction
    arg: Evaluator | None  # None for count(*)
    extra_args: tuple
    arg_expr: Expression | None = None


@dataclass(frozen=True)
class TablePlan:
    """Executable form of one CREATE TABLE statement."""

    name: str
    kind: str  # "aggregation" | "filter"
    predicate: Evaluator | None
    window_seconds: float | None
    group_keys: tuple[tuple[str, Evaluator], ...]
    aggregates: tuple[BoundAggregate, ...]
    projections: tuple[tuple[str, Evaluator], ...]  # filter mode only
    #: Source ASTs for ``group_keys`` (same order); lets the plan
    #: compiler specialize plain-column keys into direct dict reads.
    group_key_exprs: tuple[Expression, ...] = ()

    def group_key(self, row: Row) -> tuple:
        return tuple(evaluator(row) for _, evaluator in self.group_keys)


@dataclass(frozen=True)
class AppPlan:
    """Executable form of a whole PQL application."""

    name: str
    input_table: CreateInputTable
    tables: tuple[TablePlan, ...]

    @property
    def scribe_category(self) -> str:
        return self.input_table.scribe_category

    @property
    def time_column(self) -> str:
        return self.input_table.time_column

    def table(self, name: str) -> TablePlan:
        for table in self.tables:
            if table.name == name:
                return table
        raise PlanningError(f"app {self.name!r} has no table {name!r}")


def plan(program: PqlProgram) -> AppPlan:
    """Validate and compile a parsed program into an :class:`AppPlan`."""
    if program.application is None:
        raise PlanningError("program has no CREATE APPLICATION")
    if len(program.input_tables) != 1:
        raise PlanningError(
            "exactly one CREATE INPUT TABLE is required "
            f"(got {len(program.input_tables)})"
        )
    if not program.tables:
        raise PlanningError("program defines no output tables")
    input_table = program.input_tables[0]
    table_plans = tuple(
        _plan_table(create, input_table) for create in program.tables
    )
    names = [table.name for table in table_plans]
    if len(set(names)) != len(names):
        raise PlanningError(f"duplicate table names: {names}")
    return AppPlan(program.application.name, input_table, table_plans)


def _plan_table(create: CreateTable,
                input_table: CreateInputTable) -> TablePlan:
    select = create.select
    if select.from_table != input_table.name:
        raise PlanningError(
            f"table {create.name!r} reads {select.from_table!r}, but the "
            f"app's input table is {input_table.name!r}"
        )
    columns = input_table.columns
    predicate = (compile_expression(select.where, columns)
                 if select.where is not None else None)

    if select.is_aggregation():
        return _plan_aggregation(create.name, select, columns, predicate)
    return _plan_filter(create.name, select, columns, predicate)


def _plan_aggregation(name: str, select: Select, columns: tuple[str, ...],
                      predicate: Evaluator | None) -> TablePlan:
    aggregates = []
    plain: list[tuple[str, Evaluator]] = []
    plain_exprs: list[Expression] = []
    for projection in select.projections:
        expr = projection.expression
        if isinstance(expr, Aggregate):
            arg = (compile_expression(expr.arg, columns)
                   if expr.arg is not None else None)
            aggregates.append(BoundAggregate(
                projection.alias, get_aggregate(expr.name), arg,
                expr.extra_args, arg_expr=expr.arg,
            ))
        else:
            plain.append((projection.alias, compile_expression(expr, columns)))
            plain_exprs.append(expr)

    if select.group_by:
        group_keys = tuple(
            (column, compile_expression(Column(column), columns))
            for column in select.group_by
        )
        group_key_exprs = tuple(Column(c) for c in select.group_by)
        declared = {alias for alias, _ in plain}
        missing = [c for c in select.group_by if c not in declared]
        if missing and plain:
            raise PlanningError(
                f"GROUP BY columns {missing} are not projected"
            )
    else:
        # Puma convention: non-aggregate projections are the group key.
        group_keys = tuple(plain)
        group_key_exprs = tuple(plain_exprs)

    return TablePlan(
        name=name,
        kind="aggregation",
        predicate=predicate,
        window_seconds=(select.window.seconds
                        if select.window is not None else None),
        group_keys=group_keys,
        aggregates=tuple(aggregates),
        projections=(),
        group_key_exprs=group_key_exprs,
    )


def _plan_filter(name: str, select: Select, columns: tuple[str, ...],
                 predicate: Evaluator | None) -> TablePlan:
    if select.group_by:
        raise PlanningError(
            f"table {name!r}: GROUP BY without aggregates is meaningless"
        )
    projections = tuple(
        (projection.alias,
         compile_expression(projection.expression, columns))
        for projection in select.projections
    )
    return TablePlan(
        name=name,
        kind="filter",
        predicate=predicate,
        window_seconds=None,
        group_keys=(),
        aggregates=(),
        projections=projections,
    )
