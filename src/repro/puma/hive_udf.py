"""Run Puma apps in the batch environment (paper Section 4.5.2).

"Puma applications can run in Hive's environment as Hive UDFs and UDAFs.
The Puma app code remains unchanged, whether it is running over
streaming or batch data." This module takes the *same compiled plan* the
streaming runtime executes and runs it through MapReduce over Hive rows:
the PQL aggregation functions are the UDAFs (their monoid merge is the
combiner), and the compiled filter/projection expressions are the UDFs.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.core.windows import TumblingWindow
from repro.errors import PlanningError
from repro.hive.mapreduce import MapReduceJob, run_map_reduce
from repro.puma.planner import AppPlan, TablePlan

Row = dict[str, Any]


def run_puma_backfill(plan: AppPlan, table_name: str,
                      rows: Iterable[Row]) -> list[Row]:
    """Run one table of a Puma app over batch rows.

    Returns the same rows :meth:`repro.puma.app.PumaApp.query` would
    return after streaming the same data — the stream/batch equivalence
    tests assert exactly that.
    """
    table = plan.table(table_name)
    if table.kind == "filter":
        return _run_filter(plan, table, rows)
    return _run_aggregation(plan, table, rows)


def _run_filter(plan: AppPlan, table: TablePlan,
                rows: Iterable[Row]) -> list[Row]:
    job = MapReduceJob(
        mapper=lambda row: _filter_map(plan, table, row),
        reducer=lambda key, values: list(values),
        num_map_tasks=4,
    )
    return run_map_reduce(job, rows)


def _filter_map(plan: AppPlan, table: TablePlan,
                row: Row) -> list[tuple[Any, Row]]:
    if table.predicate is not None and not table.predicate(row):
        return []
    record = {alias: evaluator(row) for alias, evaluator in table.projections}
    record.setdefault(plan.time_column, row.get(plan.time_column))
    return [(row.get(plan.time_column), record)]


def _run_aggregation(plan: AppPlan, table: TablePlan,
                     rows: Iterable[Row]) -> list[Row]:
    time_column = plan.time_column

    def mapper(row: Row) -> list[tuple[str, dict[str, Any]]]:
        if table.predicate is not None and not table.predicate(row):
            return []
        event_time = row.get(time_column)
        if event_time is None:
            return []
        if table.window_seconds is None:
            window_start = 0.0
        else:
            window_start = TumblingWindow(
                table.window_seconds
            ).window_containing(float(event_time)).start
        group_key = table.group_key(row)
        key = json.dumps([window_start, list(group_key)], sort_keys=True)
        update = {}
        for bound in table.aggregates:
            value = bound.arg(row) if bound.arg is not None else 1
            state = bound.function.create(bound.extra_args)
            update[bound.alias] = bound.function.update(
                state, value, bound.extra_args
            )
        return [(key, update)]

    def combiner(key: str, partials: list[dict[str, Any]]) -> dict[str, Any]:
        return _merge_states(table, partials)

    def reducer(key: str, partials: list[dict[str, Any]]) -> list[Row]:
        merged = _merge_states(table, partials)
        window_start, group_values = json.loads(key)
        row: Row = {"window_start": window_start}
        for (column, _), value in zip(table.group_keys, group_values):
            row[column] = value
        for bound in table.aggregates:
            row[bound.alias] = bound.function.result(
                merged[bound.alias], bound.extra_args
            )
        return [row]

    if not table.aggregates:
        raise PlanningError(f"table {table.name!r} has no aggregates")
    job = MapReduceJob(mapper=mapper, reducer=reducer, combiner=combiner,
                       num_map_tasks=4)
    output = run_map_reduce(job, rows)
    output.sort(key=lambda r: (r["window_start"],
                               json.dumps([r[c] for c, _ in table.group_keys])))
    return output


def _merge_states(table: TablePlan,
                  partials: list[dict[str, Any]]) -> dict[str, Any]:
    merged = {
        bound.alias: bound.function.create(bound.extra_args)
        for bound in table.aggregates
    }
    for partial in partials:
        for bound in table.aggregates:
            merged[bound.alias] = bound.function.merge(
                merged[bound.alias], partial[bound.alias], bound.extra_args
            )
    return merged
