"""Run Puma apps in the batch environment (paper Section 4.5.2).

"Puma applications can run in Hive's environment as Hive UDFs and UDAFs.
The Puma app code remains unchanged, whether it is running over
streaming or batch data." This module takes the *same compiled program*
the streaming runtime executes — the :class:`ExecutablePlan` lowered by
:mod:`repro.puma.compiler` — and runs it through MapReduce over Hive
rows: each map task folds its rows through the compiled table program
(``fold_batch`` / ``project_batch``), the monoid ``merge`` closures are
the combiner/reducer UDAFs, and the compiled filter/projection
expressions are the UDFs. Streaming and backfill therefore share one
lowered program, not merely one source plan.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.errors import PlanningError
from repro.hive.mapreduce import MapReduceJob, run_map_reduce
from repro.puma.compiler import CompiledTable, ExecutablePlan, PlanCache
from repro.puma.planner import AppPlan

Row = dict[str, Any]


def run_puma_backfill(plan: AppPlan | ExecutablePlan, table_name: str,
                      rows: Iterable[Row],
                      plan_cache: PlanCache | None = None) -> list[Row]:
    """Run one table of a Puma app over batch rows.

    Accepts either the planner's :class:`AppPlan` (lowered here, through
    ``plan_cache`` when given — so a backfill of a deployed app reuses
    the streaming runtime's compiled program) or an already-compiled
    :class:`ExecutablePlan`. Returns the same rows
    :meth:`repro.puma.app.PumaApp.query` would return after streaming
    the same data — the stream/batch equivalence tests assert exactly
    that.
    """
    if isinstance(plan, ExecutablePlan):
        executable = plan
    elif plan_cache is not None:
        executable = plan_cache.get(plan)
    else:
        executable = ExecutablePlan(plan)
    table = executable.table(table_name)
    if table.kind == "filter":
        return _run_filter(table, rows)
    return _run_aggregation(table, rows)


def _run_filter(table: CompiledTable, rows: Iterable[Row]) -> list[Row]:
    time_column = table.time_column

    def mapper(row: Row) -> list[tuple[Any, Row]]:
        projected = table.project_batch([row])
        return [(row.get(time_column), record) for record, _ in projected]

    job = MapReduceJob(
        mapper=mapper,
        reducer=lambda key, values: list(values),
        num_map_tasks=4,
    )
    return run_map_reduce(job, rows)


def _run_aggregation(table: CompiledTable, rows: Iterable[Row]) -> list[Row]:
    if not table.aggregates:
        raise PlanningError(f"table {table.name!r} has no aggregates")

    def mapper(row: Row) -> list[tuple[str, dict[str, Any]]]:
        # The compiled program does filter → window → group → fold in
        # one pass; a single-row chunk yields that row's delta state.
        deltas = table.fold_batch([row])
        return [
            (json.dumps([window_start, list(group_key)], sort_keys=True),
             delta)
            for (window_start, group_key), delta in deltas.items()
        ]

    def combiner(key: str, partials: list[dict[str, Any]]) -> dict[str, Any]:
        return _merge_states(table, partials)

    def reducer(key: str, partials: list[dict[str, Any]]) -> list[Row]:
        merged = _merge_states(table, partials)
        window_start, group_values = json.loads(key)
        row: Row = {"window_start": window_start}
        for column, value in zip(table.group_columns, group_values):
            row[column] = value
        for aggregate in table.aggregates:
            row[aggregate.alias] = aggregate.result(merged[aggregate.alias])
        return [row]

    job = MapReduceJob(mapper=mapper, reducer=reducer, combiner=combiner,
                       num_map_tasks=4)
    output = run_map_reduce(job, rows)
    output.sort(key=lambda r: (r["window_start"],
                               json.dumps([r[c]
                                           for c in table.group_columns])))
    return output


def _merge_states(table: CompiledTable,
                  partials: list[dict[str, Any]]) -> dict[str, Any]:
    merged = {
        aggregate.alias: aggregate.create()
        for aggregate in table.aggregates
    }
    for partial in partials:
        for aggregate in table.aggregates:
            merged[aggregate.alias] = aggregate.merge(
                merged[aggregate.alias], partial[aggregate.alias]
            )
    return merged
