"""Recursive-descent parser for PQL.

Grammar (statements end with ``;``):

    program        := statement* ;
    statement      := create_application | create_input_table | create_table
    create_application := CREATE APPLICATION ident
    create_input_table := CREATE INPUT TABLE ident "(" ident ("," ident)* ")"
                          FROM SCRIBE "(" string ")" TIME ident
    create_table   := CREATE TABLE ident AS select
    select         := SELECT projection ("," projection)* FROM ident window?
                      (WHERE expr)? (GROUP BY ident ("," ident)*)?
    window         := "[" number time_unit "]"
    projection     := expr (AS ident)?
    expr           := or_expr
    or_expr        := and_expr (OR and_expr)*
    and_expr       := not_expr (AND not_expr)*
    not_expr       := NOT not_expr | comparison
    comparison     := additive ((= | != | < | <= | > | >=) additive
                      | (NOT)? IN "(" literal ("," literal)* ")")?
    additive       := term ((+|-) term)*
    term           := factor ((*|/|%) factor)*
    factor         := "-" factor | literal | column | call | "(" expr ")"
    call           := ident "(" ("*" | expr ("," expr)*)? ")"
"""

from __future__ import annotations

from typing import Any

from repro.errors import PqlSyntaxError
from repro.puma.ast import (
    Aggregate,
    BinaryOp,
    Column,
    CreateApplication,
    CreateInputTable,
    CreateTable,
    Expression,
    FunctionCall,
    InList,
    Literal,
    PqlProgram,
    Projection,
    Select,
    UnaryOp,
    WindowSpec,
)
from repro.puma.functions import AGGREGATE_FUNCTIONS
from repro.puma.lexer import Token, TokenType, tokenize

_TIME_UNITS = {
    "SECOND": 1.0, "SECONDS": 1.0,
    "MINUTE": 60.0, "MINUTES": 60.0,
    "HOUR": 3600.0, "HOURS": 3600.0,
    "DAY": 86400.0, "DAYS": 86400.0,
}


def parse(source: str) -> PqlProgram:
    """Parse PQL source into a :class:`PqlProgram`."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type != TokenType.END:
            self._index += 1
        return token

    def _error(self, message: str) -> PqlSyntaxError:
        token = self._peek()
        return PqlSyntaxError(message, token.line, token.column)

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise self._error(f"expected {word}, got {token.value!r}")
        return self._advance()

    def _expect_punct(self, char: str) -> Token:
        token = self._peek()
        if token.type != TokenType.PUNCTUATION or token.value != char:
            raise self._error(f"expected {char!r}, got {token.value!r}")
        return self._advance()

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type == TokenType.IDENTIFIER:
            return self._advance().value
        # Time units are *soft* keywords: outside a window spec they are
        # perfectly good names ("... AS hour").
        if token.type == TokenType.KEYWORD and token.value in _TIME_UNITS:
            return self._advance().value.lower()
        raise self._error(f"expected identifier, got {token.value!r}")

    def _match_punct(self, char: str) -> bool:
        token = self._peek()
        if token.type == TokenType.PUNCTUATION and token.value == char:
            self._advance()
            return True
        return False

    def _match_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    # -- statements ---------------------------------------------------------------

    def parse_program(self) -> PqlProgram:
        program = PqlProgram()
        while self._peek().type != TokenType.END:
            self._expect_keyword("CREATE")
            token = self._peek()
            if token.is_keyword("APPLICATION"):
                self._advance()
                name = self._expect_identifier()
                if program.application is not None:
                    raise self._error("duplicate CREATE APPLICATION")
                program.application = CreateApplication(name)
            elif token.is_keyword("INPUT"):
                self._advance()
                program.input_tables.append(self._parse_input_table())
            elif token.is_keyword("TABLE"):
                program.tables.append(self._parse_create_table())
            else:
                raise self._error(
                    "expected APPLICATION, INPUT TABLE, or TABLE after CREATE"
                )
            self._expect_punct(";")
        return program

    def _parse_input_table(self) -> CreateInputTable:
        self._expect_keyword("TABLE")
        name = self._expect_identifier()
        self._expect_punct("(")
        columns = [self._expect_identifier()]
        while self._match_punct(","):
            columns.append(self._expect_identifier())
        self._expect_punct(")")
        self._expect_keyword("FROM")
        self._expect_keyword("SCRIBE")
        self._expect_punct("(")
        category_token = self._peek()
        if category_token.type != TokenType.STRING:
            raise self._error("SCRIBE() takes a quoted category name")
        self._advance()
        self._expect_punct(")")
        self._expect_keyword("TIME")
        time_column = self._expect_identifier()
        if time_column not in columns:
            raise self._error(
                f"TIME column {time_column!r} is not a declared column"
            )
        return CreateInputTable(name, tuple(columns), category_token.value,
                                time_column)

    def _parse_create_table(self) -> CreateTable:
        self._expect_keyword("TABLE")
        name = self._expect_identifier()
        self._expect_keyword("AS")
        select = self._parse_select()
        return CreateTable(name, select)

    # -- SELECT --------------------------------------------------------------------

    def _parse_select(self) -> Select:
        self._expect_keyword("SELECT")
        projections = [self._parse_projection()]
        while self._match_punct(","):
            projections.append(self._parse_projection())
        self._expect_keyword("FROM")
        from_table = self._expect_identifier()
        window = None
        if self._match_punct("["):
            window = self._parse_window()
        where = None
        if self._match_keyword("WHERE"):
            where = self._parse_expression()
        group_by: list[str] = []
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expect_identifier())
            while self._match_punct(","):
                group_by.append(self._expect_identifier())
        return Select(tuple(projections), from_table, window, where,
                      tuple(group_by))

    def _parse_window(self) -> WindowSpec:
        token = self._peek()
        if token.type != TokenType.NUMBER:
            raise self._error("expected a number in the window spec")
        self._advance()
        amount = float(token.value)
        unit_token = self._peek()
        unit = _TIME_UNITS.get(unit_token.value)
        if unit_token.type != TokenType.KEYWORD or unit is None:
            raise self._error(
                f"expected a time unit, got {unit_token.value!r}"
            )
        self._advance()
        self._expect_punct("]")
        return WindowSpec(amount * unit)

    def _parse_projection(self) -> Projection:
        expression = self._parse_projection_expression()
        if self._match_keyword("AS"):
            alias = self._expect_identifier()
        else:
            alias = _default_alias(expression)
        return Projection(expression, alias)

    def _parse_projection_expression(self) -> Expression | Aggregate:
        """A projection may be an aggregate call; nested aggregates are not."""
        token = self._peek()
        next_token = self._tokens[self._index + 1] \
            if self._index + 1 < len(self._tokens) else None
        is_call = (token.type == TokenType.IDENTIFIER
                   and next_token is not None
                   and next_token.type == TokenType.PUNCTUATION
                   and next_token.value == "(")
        if is_call and token.value.lower() in AGGREGATE_FUNCTIONS:
            return self._parse_aggregate()
        return self._parse_expression()

    def _parse_aggregate(self) -> Aggregate:
        name = self._advance().value.lower()
        self._expect_punct("(")
        if self._peek().type == TokenType.OPERATOR and self._peek().value == "*":
            self._advance()
            self._expect_punct(")")
            return Aggregate(name, None, star=True)
        if self._match_punct(")"):
            return Aggregate(name, None, star=True)
        arg = self._parse_expression()
        extra: list[Any] = []
        while self._match_punct(","):
            literal = self._parse_expression()
            if not isinstance(literal, Literal):
                raise self._error(
                    f"extra arguments to {name}() must be literals"
                )
            extra.append(literal.value)
        self._expect_punct(")")
        return Aggregate(name, arg, extra_args=tuple(extra))

    # -- expressions ----------------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._match_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._match_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._match_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.type == TokenType.OPERATOR and token.value in (
                "=", "!=", "<", "<=", ">", ">="):
            self._advance()
            return BinaryOp(token.value, left, self._parse_additive())
        negated = False
        if token.is_keyword("NOT"):
            lookahead = self._tokens[self._index + 1]
            if lookahead.is_keyword("IN"):
                self._advance()
                negated = True
                token = self._peek()
        if token.is_keyword("IN"):
            self._advance()
            self._expect_punct("(")
            values = [self._parse_expression()]
            while self._match_punct(","):
                values.append(self._parse_expression())
            self._expect_punct(")")
            return InList(left, tuple(values), negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_term()
        while True:
            token = self._peek()
            if token.type == TokenType.OPERATOR and token.value in ("+", "-"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while True:
            token = self._peek()
            if token.type == TokenType.OPERATOR and token.value in ("*", "/", "%"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_factor())
            else:
                return left

    def _parse_factor(self) -> Expression:
        token = self._peek()
        if token.type == TokenType.OPERATOR and token.value == "-":
            self._advance()
            return UnaryOp("-", self._parse_factor())
        if token.type == TokenType.NUMBER:
            self._advance()
            value = float(token.value)
            if value.is_integer() and "." not in token.value:
                return Literal(int(value))
            return Literal(value)
        if token.type == TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if self._match_punct("("):
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner
        if token.type == TokenType.IDENTIFIER:
            next_token = self._tokens[self._index + 1]
            if (next_token.type == TokenType.PUNCTUATION
                    and next_token.value == "("):
                return self._parse_function_call()
            self._advance()
            return Column(token.value)
        raise self._error(f"unexpected token {token.value!r} in expression")

    def _parse_function_call(self) -> FunctionCall:
        name = self._advance().value
        self._expect_punct("(")
        args: list[Expression] = []
        if not self._match_punct(")"):
            args.append(self._parse_expression())
            while self._match_punct(","):
                args.append(self._parse_expression())
            self._expect_punct(")")
        return FunctionCall(name.lower(), tuple(args))


def _default_alias(expression: Expression | Aggregate) -> str:
    if isinstance(expression, Column):
        return expression.name
    if isinstance(expression, Aggregate):
        return expression.name
    if isinstance(expression, FunctionCall):
        return expression.name
    return "expr"
