"""Tokenizer for PQL, Puma's SQL dialect.

The dialect is the one visible in the paper's Figure 2: CREATE
APPLICATION / CREATE INPUT TABLE ... FROM SCRIBE(...) TIME col /
CREATE TABLE ... AS SELECT ... FROM table [N minutes], plus WHERE,
GROUP BY, and function calls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PqlSyntaxError

KEYWORDS = {
    "CREATE", "APPLICATION", "INPUT", "TABLE", "FROM", "SCRIBE", "TIME",
    "AS", "SELECT", "WHERE", "GROUP", "BY", "AND", "OR", "NOT", "IN",
    "SECONDS", "SECOND", "MINUTES", "MINUTE", "HOURS", "HOUR",
    "DAYS", "DAY", "TRUE", "FALSE", "NULL",
}


class TokenType(enum.Enum):
    """Lexical categories."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"     # = != < <= > >= + - * / %
    PUNCTUATION = "punct"     # ( ) , ; [ ] .
    END = "end"


@dataclass(frozen=True)
class Token:
    """One token with its source position (1-based line and column)."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value == word.upper()


_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCTUATION = "(),;[]."


def tokenize(source: str) -> list[Token]:
    """Tokenize PQL source; raises :class:`PqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> PqlSyntaxError:
        return PqlSyntaxError(message, line, column)

    while index < length:
        char = source[index]

        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("--", index):  # line comment
            while index < length and source[index] != "\n":
                index += 1
            continue

        start_column = column

        if char == "'" or char == '"':
            quote = char
            end = index + 1
            while end < length and source[end] != quote:
                if source[end] == "\n":
                    raise error("unterminated string literal")
                end += 1
            if end >= length:
                raise error("unterminated string literal")
            value = source[index + 1:end]
            tokens.append(Token(TokenType.STRING, value, line, start_column))
            column += end + 1 - index
            index = end + 1
            continue

        if char.isdigit() or (char == "." and index + 1 < length
                              and source[index + 1].isdigit()):
            end = index
            seen_dot = False
            while end < length and (source[end].isdigit()
                                    or (source[end] == "." and not seen_dot)):
                if source[end] == ".":
                    seen_dot = True
                end += 1
            value = source[index:end]
            tokens.append(Token(TokenType.NUMBER, value, line, start_column))
            column += end - index
            index = end
            continue

        if char.isalpha() or char == "_":
            end = index
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            word = source[index:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, line, start_column))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, line,
                                    start_column))
            column += end - index
            index = end
            continue

        matched_op = next(
            (op for op in _OPERATORS if source.startswith(op, index)), None
        )
        if matched_op is not None:
            value = "!=" if matched_op == "<>" else matched_op
            tokens.append(Token(TokenType.OPERATOR, value, line, start_column))
            column += len(matched_op)
            index += len(matched_op)
            continue

        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, line, start_column))
            column += 1
            index += 1
            continue

        raise error(f"unexpected character {char!r}")

    tokens.append(Token(TokenType.END, "", line, column))
    return tokens
