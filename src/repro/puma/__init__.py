"""Puma: the SQL stream-processing system (paper Section 2.2).

Puma apps are written in a SQL dialect (PQL) with UDFs. An app is
either:

- a **stateful aggregation app** (the Figure 2 "top K events" app):
  windowed GROUP BY aggregation whose pre-computed results are served
  through a query API ("Thrift API" in the paper), with at-least-once
  state checkpointed to an HBase-style table store; or
- a **stateless filtering app**: a SELECT without aggregation functions
  whose output is another Scribe stream, feeding further processors.

The same app code also runs in the batch environment as Hive UDFs /
UDAFs for backfill (Section 4.5.2) — see :mod:`repro.puma.hive_udf`.
"""

from repro.puma.app import PumaApp
from repro.puma.ast import (
    Aggregate,
    BinaryOp,
    Column,
    CreateApplication,
    CreateInputTable,
    CreateTable,
    FunctionCall,
    Literal,
    PqlProgram,
    Select,
)
from repro.puma.functions import (
    AGGREGATE_FUNCTIONS,
    SCALAR_FUNCTIONS,
    AggregateFunction,
    register_aggregate,
    register_udf,
)
from repro.puma.lexer import Token, TokenType, tokenize
from repro.puma.parser import parse
from repro.puma.planner import AppPlan, plan
from repro.puma.service import PumaService

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "Aggregate",
    "AggregateFunction",
    "AppPlan",
    "BinaryOp",
    "Column",
    "CreateApplication",
    "CreateInputTable",
    "CreateTable",
    "FunctionCall",
    "Literal",
    "PqlProgram",
    "PumaApp",
    "PumaService",
    "SCALAR_FUNCTIONS",
    "Select",
    "Token",
    "TokenType",
    "parse",
    "plan",
    "register_aggregate",
    "register_udf",
    "tokenize",
]
