"""Abstract syntax tree for PQL."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


# -- expressions ---------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """A constant: number, string, boolean, or null."""

    value: Any


@dataclass(frozen=True)
class Column:
    """A reference to an input column."""

    name: str


@dataclass(frozen=True)
class BinaryOp:
    """Infix operation: comparison, arithmetic, or boolean connective."""

    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class UnaryOp:
    """NOT or unary minus."""

    op: str
    operand: "Expression"


@dataclass(frozen=True)
class InList:
    """``expr IN (v1, v2, ...)`` membership test."""

    needle: "Expression"
    values: tuple["Expression", ...]
    negated: bool = False


@dataclass(frozen=True)
class FunctionCall:
    """A scalar function / UDF call in an expression."""

    name: str
    args: tuple["Expression", ...]


Expression = Literal | Column | BinaryOp | UnaryOp | InList | FunctionCall


@dataclass(frozen=True)
class Aggregate:
    """An aggregation call in a projection (count, sum, topk, ...).

    ``star`` marks ``count(*)``. Extra literal arguments (e.g. the K of
    ``topk(score, 5)``) are carried in ``extra_args``.
    """

    name: str
    arg: Expression | None
    star: bool = False
    extra_args: tuple[Any, ...] = ()


@dataclass(frozen=True)
class Projection:
    """One SELECT item with its output name."""

    expression: Expression | Aggregate
    alias: str


# -- statements -----------------------------------------------------------------


@dataclass(frozen=True)
class CreateApplication:
    """``CREATE APPLICATION name;``"""

    name: str


@dataclass(frozen=True)
class CreateInputTable:
    """``CREATE INPUT TABLE t (cols) FROM SCRIBE("cat") TIME col;``"""

    name: str
    columns: tuple[str, ...]
    scribe_category: str
    time_column: str


@dataclass(frozen=True)
class WindowSpec:
    """``[5 minutes]`` on a FROM clause, normalized to seconds."""

    seconds: float


@dataclass(frozen=True)
class Select:
    """The SELECT inside a CREATE TABLE ... AS."""

    projections: tuple[Projection, ...]
    from_table: str
    window: WindowSpec | None = None
    where: Expression | None = None
    group_by: tuple[str, ...] = ()

    def aggregates(self) -> list[tuple[str, Aggregate]]:
        """(alias, aggregate) pairs among the projections."""
        return [
            (projection.alias, projection.expression)
            for projection in self.projections
            if isinstance(projection.expression, Aggregate)
        ]

    def is_aggregation(self) -> bool:
        return bool(self.aggregates())


@dataclass(frozen=True)
class CreateTable:
    """``CREATE TABLE name AS SELECT ...``"""

    name: str
    select: Select


Statement = CreateApplication | CreateInputTable | CreateTable


@dataclass
class PqlProgram:
    """A parsed PQL source: one application plus its tables."""

    application: CreateApplication | None = None
    input_tables: list[CreateInputTable] = field(default_factory=list)
    tables: list[CreateTable] = field(default_factory=list)

    def input_table(self, name: str) -> CreateInputTable | None:
        for table in self.input_tables:
            if table.name == name:
                return table
        return None
