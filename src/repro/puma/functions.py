"""Puma aggregation functions and scalar UDFs.

"The aggregation functions in Puma are all monoid" (Section 4.4.2):
every :class:`AggregateFunction` defines an identity state, a per-value
update, and an associative merge, so Puma can checkpoint partial states,
combine partial aggregates across shard processes (the Section 5.2
dashboard pattern), and run map-side partial aggregation in backfill.

States are plain JSON-serializable values so they round-trip through the
HBase checkpoint rows and through Scribe.

UDFs ("user-defined functions written in Java" in the paper; Python
callables here) are registered with :func:`register_udf` and usable
anywhere a scalar expression is.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.analysis.hll import HyperLogLog
from repro.core.kernels import (  # noqa: F401  (re-exported: the kernels
    COLUMNAR_KERNELS,             # lived here before they became the
    AvgKernel,                    # shared Puma/Scuba lowering layer in
    ColumnarKernel,               # repro.core.kernels)
    CountKernel,
    MaxKernel,
    MinKernel,
    SumKernel,
    get_columnar_kernel,
)
from repro.errors import UnknownFunction


class AggregateFunction(ABC):
    """A monoid aggregation: identity, update, merge, finalize."""

    name: str = ""

    @abstractmethod
    def create(self, extra_args: tuple = ()) -> Any:
        """The identity state."""

    @abstractmethod
    def update(self, state: Any, value: Any, extra_args: tuple = ()) -> Any:
        """Fold one input value into the state; returns the new state."""

    @abstractmethod
    def merge(self, left: Any, right: Any, extra_args: tuple = ()) -> Any:
        """Associative combination of two states."""

    @abstractmethod
    def result(self, state: Any, extra_args: tuple = ()) -> Any:
        """The user-visible result for a finished state."""

    def fold(self, state: Any, values: Any, extra_args: tuple = ()) -> Any:
        """Fold many values into ``state`` in order.

        Identical to chaining :meth:`update` per value — the plan
        compiler calls this once per (batch, group) so aggregates can
        provide a bulk implementation that skips per-value state
        round-trips (sorts, sketch materialization, dict copies).
        """
        update = self.update
        for value in values:
            state = update(state, value, extra_args)
        return state


class CountAggregate(AggregateFunction):
    """``count(*)`` / ``count(col)`` (null column values are skipped)."""

    name = "count"

    def create(self, extra_args: tuple = ()) -> int:
        return 0

    def update(self, state: int, value: Any, extra_args: tuple = ()) -> int:
        return state + (0 if value is None else 1)

    def merge(self, left: int, right: int, extra_args: tuple = ()) -> int:
        return left + right

    def result(self, state: int, extra_args: tuple = ()) -> int:
        return state


class SumAggregate(AggregateFunction):
    name = "sum"

    def create(self, extra_args: tuple = ()) -> float:
        return 0

    def update(self, state: float, value: Any,
               extra_args: tuple = ()) -> float:
        return state if value is None else state + value

    def merge(self, left: float, right: float,
              extra_args: tuple = ()) -> float:
        return left + right

    def result(self, state: float, extra_args: tuple = ()) -> float:
        return state


class AvgAggregate(AggregateFunction):
    """Average; state is ``[sum, count]`` so it merges exactly."""

    name = "avg"

    def create(self, extra_args: tuple = ()) -> list:
        return [0.0, 0]

    def update(self, state: list, value: Any, extra_args: tuple = ()) -> list:
        if value is None:
            return state
        return [state[0] + value, state[1] + 1]

    def merge(self, left: list, right: list, extra_args: tuple = ()) -> list:
        return [left[0] + right[0], left[1] + right[1]]

    def result(self, state: list, extra_args: tuple = ()) -> float | None:
        return state[0] / state[1] if state[1] else None


class MinAggregate(AggregateFunction):
    name = "min"

    def create(self, extra_args: tuple = ()) -> Any:
        return None

    def update(self, state: Any, value: Any, extra_args: tuple = ()) -> Any:
        if value is None:
            return state
        return value if state is None or value < state else state

    def merge(self, left: Any, right: Any, extra_args: tuple = ()) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return min(left, right)

    def result(self, state: Any, extra_args: tuple = ()) -> Any:
        return state


class MaxAggregate(AggregateFunction):
    name = "max"

    def create(self, extra_args: tuple = ()) -> Any:
        return None

    def update(self, state: Any, value: Any, extra_args: tuple = ()) -> Any:
        if value is None:
            return state
        return value if state is None or value > state else state

    def merge(self, left: Any, right: Any, extra_args: tuple = ()) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return max(left, right)

    def result(self, state: Any, extra_args: tuple = ()) -> Any:
        return state


class TopKAggregate(AggregateFunction):
    """``topk(expr [, k])``: the K largest values seen (default K=10).

    This is the aggregation in the paper's Figure 2. The state — a
    descending list capped at K — is a monoid: merge concatenates,
    re-sorts, and truncates.
    """

    name = "topk"
    DEFAULT_K = 10

    def _k(self, extra_args: tuple) -> int:
        return int(extra_args[0]) if extra_args else self.DEFAULT_K

    def create(self, extra_args: tuple = ()) -> list:
        return []

    def update(self, state: list, value: Any, extra_args: tuple = ()) -> list:
        if value is None:
            return state
        merged = sorted(state + [value], reverse=True)
        return merged[:self._k(extra_args)]

    def merge(self, left: list, right: list, extra_args: tuple = ()) -> list:
        merged = sorted(left + right, reverse=True)
        return merged[:self._k(extra_args)]

    def result(self, state: list, extra_args: tuple = ()) -> list:
        return list(state)

    def fold(self, state: list, values: Any, extra_args: tuple = ()) -> list:
        """One sort over the whole batch instead of one per value.

        Truncating once at the end keeps the same top-K multiset as
        truncating after every value, so the state is identical.
        """
        present = [value for value in values if value is not None]
        if not present:
            return state
        merged = sorted(state + present, reverse=True)
        return merged[:self._k(extra_args)]


class ApproxDistinctAggregate(AggregateFunction):
    """``approx_distinct(expr)``: HyperLogLog distinct-count estimate."""

    name = "approx_distinct"

    def create(self, extra_args: tuple = ()) -> dict:
        return HyperLogLog().to_state()

    def update(self, state: dict, value: Any, extra_args: tuple = ()) -> dict:
        if value is None:
            return state
        sketch = HyperLogLog.from_state(state)
        sketch.add(value)
        return sketch.to_state()

    def merge(self, left: dict, right: dict, extra_args: tuple = ()) -> dict:
        return (HyperLogLog.from_state(left)
                .merge(HyperLogLog.from_state(right)).to_state())

    def result(self, state: dict, extra_args: tuple = ()) -> int:
        return round(HyperLogLog.from_state(state).cardinality())

    def fold(self, state: dict, values: Any, extra_args: tuple = ()) -> dict:
        """Materialize the sketch once per batch, not once per value."""
        present = [value for value in values if value is not None]
        if not present:
            return state
        sketch = HyperLogLog.from_state(state)
        for value in present:
            sketch.add(value)
        return sketch.to_state()


class StddevAggregate(AggregateFunction):
    """Population standard deviation; state ``[n, mean, M2]`` (Chan et al.)."""

    name = "stddev"

    def create(self, extra_args: tuple = ()) -> list:
        return [0, 0.0, 0.0]

    def update(self, state: list, value: Any, extra_args: tuple = ()) -> list:
        if value is None:
            return state
        n, mean, m2 = state
        n += 1
        delta = value - mean
        mean += delta / n
        m2 += delta * (value - mean)
        return [n, mean, m2]

    def merge(self, left: list, right: list, extra_args: tuple = ()) -> list:
        n1, mean1, m21 = left
        n2, mean2, m22 = right
        if n1 == 0:
            return list(right)
        if n2 == 0:
            return list(left)
        n = n1 + n2
        delta = mean2 - mean1
        mean = mean1 + delta * n2 / n
        m2 = m21 + m22 + delta * delta * n1 * n2 / n
        return [n, mean, m2]

    def result(self, state: list, extra_args: tuple = ()) -> float | None:
        n, _, m2 = state
        return math.sqrt(m2 / n) if n else None


class ApproxPercentileAggregate(AggregateFunction):
    """``approx_percentile(expr, p [, bucket_width])``: histogram quantile.

    The state is a fixed-width histogram (value-bucket -> count), which
    is a plain dict-sum monoid — so it checkpoints, shards, and
    backfills like every other Puma aggregate. The result is the linear
    interpolation of the ``p``-quantile within its bucket; the error is
    bounded by the bucket width. The mobile-analytics pipelines of the
    paper's introduction (cold start time percentiles, Section 1) are
    the motivating use.
    """

    name = "approx_percentile"
    DEFAULT_BUCKET_WIDTH = 1.0

    def _width(self, extra_args: tuple) -> float:
        return float(extra_args[1]) if len(extra_args) > 1 \
            else self.DEFAULT_BUCKET_WIDTH

    @staticmethod
    def _fraction(extra_args: tuple) -> float:
        if not extra_args:
            raise UnknownFunction(
                "approx_percentile needs a percentile argument, e.g. "
                "approx_percentile(latency, 95)"
            )
        p = float(extra_args[0])
        return p / 100.0 if p > 1.0 else p

    def create(self, extra_args: tuple = ()) -> dict:
        return {}

    def update(self, state: dict, value: Any, extra_args: tuple = ()) -> dict:
        if value is None:
            return state
        width = self._width(extra_args)
        bucket = str(int(math.floor(value / width)))
        state = dict(state)
        state[bucket] = state.get(bucket, 0) + 1
        return state

    def merge(self, left: dict, right: dict, extra_args: tuple = ()) -> dict:
        merged = dict(left)
        for bucket, count in right.items():
            merged[bucket] = merged.get(bucket, 0) + count
        return merged

    def result(self, state: dict, extra_args: tuple = ()) -> float | None:
        if not state:
            return None
        width = self._width(extra_args)
        fraction = self._fraction(extra_args)
        total = sum(state.values())
        target = fraction * total
        running = 0.0
        for bucket in sorted(state, key=int):
            count = state[bucket]
            if running + count >= target:
                # Interpolate inside the bucket.
                into = (target - running) / count if count else 0.0
                return (int(bucket) + into) * width
            running += count
        last = max(state, key=int)
        return (int(last) + 1) * width

    def fold(self, state: dict, values: Any, extra_args: tuple = ()) -> dict:
        """One histogram copy per batch instead of one per value."""
        width = self._width(extra_args)
        floor = math.floor
        state = dict(state)
        for value in values:
            if value is None:
                continue
            bucket = str(int(floor(value / width)))
            state[bucket] = state.get(bucket, 0) + 1
        return state


# Columnar kernels used to be defined here; they now live in
# repro.core.kernels as the shared Puma/Scuba lowering layer and are
# re-exported above so existing imports keep working.

AGGREGATE_FUNCTIONS: dict[str, AggregateFunction] = {
    agg.name: agg
    for agg in (
        CountAggregate(), SumAggregate(), AvgAggregate(), MinAggregate(),
        MaxAggregate(), TopKAggregate(), ApproxDistinctAggregate(),
        StddevAggregate(), ApproxPercentileAggregate(),
    )
}


def register_aggregate(aggregate: AggregateFunction) -> None:
    """Add a user-defined aggregation (Hive-UDAF-style)."""
    if not aggregate.name:
        raise UnknownFunction("aggregate has no name")
    AGGREGATE_FUNCTIONS[aggregate.name.lower()] = aggregate


def get_aggregate(name: str) -> AggregateFunction:
    try:
        return AGGREGATE_FUNCTIONS[name.lower()]
    except KeyError:
        raise UnknownFunction(f"unknown aggregate {name!r}") from None


# -- scalar UDFs ------------------------------------------------------------------
#
# The builtin library mirrors "common Hive UDFs" — Section 5.3 lists
# "adding enough common Hive UDFs to Puma and Stylus to support most
# queries" as a prerequisite for converting batch pipelines. All of them
# propagate null (None in, None out), as Hive's do.


def _contains(haystack: Any, needle: Any) -> bool:
    return needle in haystack if haystack is not None else False


def _substr(s: Any, start: Any, length: Any = None) -> Any:
    """1-based substring, Hive-style."""
    if s is None:
        return None
    begin = int(start) - 1
    if length is None:
        return s[begin:]
    return s[begin:begin + int(length)]


def _split_part(s: Any, sep: Any, index: Any) -> Any:
    """1-based field extraction after splitting on ``sep``."""
    if s is None:
        return None
    parts = s.split(sep)
    position = int(index) - 1
    return parts[position] if 0 <= position < len(parts) else None


def _regexp_like(s: Any, pattern: Any) -> bool:
    import re

    return bool(re.search(pattern, s)) if s is not None else False


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    # strings
    "lower": lambda s: s.lower() if s is not None else None,
    "upper": lambda s: s.upper() if s is not None else None,
    "length": lambda s: len(s) if s is not None else None,
    "trim": lambda s: s.strip() if s is not None else None,
    "concat": lambda *parts: "".join(str(p) for p in parts),
    "contains": _contains,
    "starts_with": lambda s, p: s.startswith(p) if s is not None else False,
    "ends_with": lambda s, p: s.endswith(p) if s is not None else False,
    "substr": _substr,
    "split_part": _split_part,
    "replace": lambda s, old, new: (s.replace(old, new)
                                    if s is not None else None),
    "regexp_like": _regexp_like,
    # numbers
    "abs": lambda x: abs(x) if x is not None else None,
    "round": lambda x, digits=0: round(x, int(digits)) if x is not None else None,
    "floor": lambda x: math.floor(x) if x is not None else None,
    "ceil": lambda x: math.ceil(x) if x is not None else None,
    "sqrt": lambda x: math.sqrt(x) if x is not None else None,
    "pow": lambda x, y: x ** y if x is not None and y is not None else None,
    "ln": lambda x: math.log(x) if x is not None else None,
    "log10": lambda x: math.log10(x) if x is not None else None,
    "mod": lambda x, y: x % y if x is not None and y is not None else None,
    "greatest": lambda *xs: max(x for x in xs if x is not None)
    if any(x is not None for x in xs) else None,
    "least": lambda *xs: min(x for x in xs if x is not None)
    if any(x is not None for x in xs) else None,
    # conditionals / null handling
    "coalesce": lambda *values: next(
        (v for v in values if v is not None), None
    ),
    "if": lambda cond, then, otherwise: then if cond else otherwise,
    "nullif": lambda a, b: None if a == b else a,
    "is_null": lambda x: x is None,
    # event-time helpers (event times are seconds since the epoch of the
    # simulated world; day boundaries match Hive's midnight partitions)
    "hour_of_day": lambda t: (int(t // 3600) % 24) if t is not None else None,
    "minute_of_hour": lambda t: (int(t // 60) % 60) if t is not None else None,
    "day_bucket": lambda t: int(t // 86400) if t is not None else None,
    "time_bucket": lambda t, size: (math.floor(t / size) * size
                                    if t is not None else None),
}


def register_udf(name: str, func: Callable[..., Any]) -> None:
    """Register a scalar UDF usable in any PQL expression."""
    SCALAR_FUNCTIONS[name.lower()] = func


def get_udf(name: str) -> Callable[..., Any]:
    try:
        return SCALAR_FUNCTIONS[name.lower()]
    except KeyError:
        raise UnknownFunction(f"unknown function {name!r}") from None
