"""The Puma deployment service.

"A Puma app is almost as easy to deploy and delete as a Laser app, but
requires a second engineer: the UI generates a code diff that must be
reviewed. The app is deployed or deleted automatically after the diff is
accepted and committed." (Section 6.3). The service owns the full deploy
path — parse, plan (compile-time validation), the diff-review workflow,
instantiate — plus listing and deletion, and runs the fleet-wide
processing-lag alerts that "the Puma team runs ... for all Puma apps"
(Section 6.4). :meth:`PumaService.deploy` is the direct path used by
tests and internal tools; :meth:`PumaService.propose` /
:meth:`PumaService.approve` is the reviewed path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.puma.app import PumaApp
from repro.puma.compiler import PlanCache
from repro.puma.parser import parse
from repro.puma.planner import AppPlan, plan
from repro.runtime.clock import Clock
from repro.runtime.metrics import MetricsRegistry
from repro.scribe.store import ScribeStore
from repro.storage.hbase import HBaseTable


@dataclass(frozen=True)
class PendingDiff:
    """A proposed app change awaiting a second engineer's review."""

    diff_id: int
    author: str
    app_name: str
    source: str
    action: str  # "deploy" | "delete"


class PumaService:
    """Registry and lifecycle manager for Puma apps."""

    def __init__(self, scribe: ScribeStore,
                 clock: Clock | None = None,
                 metrics: MetricsRegistry | None = None,
                 lag_alert_threshold: int = 10_000) -> None:
        self.scribe = scribe
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.lag_alert_threshold = lag_alert_threshold
        self._apps: dict[str, PumaApp] = {}
        self._pending: dict[int, PendingDiff] = {}
        self._next_diff_id = 1
        # The shared HBase cluster Puma aggregation apps store state in.
        self.hbase = HBaseTable("puma_shared_state")
        # One compiled-program cache for the whole fleet: redeploying an
        # app under the same name recompiles (invalidation on
        # redefinition), restarts of a deployed app hit the cache.
        self.plan_cache = PlanCache(metrics=self.metrics)

    # -- deployment ---------------------------------------------------------------

    def compile(self, source: str) -> AppPlan:
        """Parse and plan without deploying (the code-review step)."""
        return plan(parse(source))

    def deploy(self, source: str, checkpoint_every_events: int = 500) -> PumaApp:
        """Deploy a PQL app; it starts consuming on the next pump."""
        app_plan = self.compile(source)
        if app_plan.name in self._apps:
            raise ConfigError(f"app {app_plan.name!r} is already deployed")
        if not self.scribe.has_category(app_plan.scribe_category):
            raise ConfigError(
                f"input category {app_plan.scribe_category!r} does not exist"
            )
        app = PumaApp(app_plan, self.scribe, self.hbase,
                      checkpoint_every_events=checkpoint_every_events,
                      clock=self.clock, metrics=self.metrics,
                      plan_cache=self.plan_cache)
        self._apps[app_plan.name] = app
        return app

    def delete(self, name: str) -> None:
        if name not in self._apps:
            raise ConfigError(f"no deployed app named {name!r}")
        del self._apps[name]
        self.plan_cache.invalidate(name)

    # -- the reviewed path (Section 6.3) -------------------------------------

    def propose(self, source: str, author: str) -> PendingDiff:
        """Generate the code diff for a new app; validation runs now.

        Compilation happens at proposal time so reviewers only ever see
        diffs that would deploy cleanly.
        """
        app_plan = self.compile(source)
        if app_plan.name in self._apps:
            raise ConfigError(f"app {app_plan.name!r} is already deployed")
        diff = PendingDiff(self._next_diff_id, author, app_plan.name,
                           source, "deploy")
        self._pending[diff.diff_id] = diff
        self._next_diff_id += 1
        return diff

    def propose_delete(self, name: str, author: str) -> PendingDiff:
        if name not in self._apps:
            raise ConfigError(f"no deployed app named {name!r}")
        diff = PendingDiff(self._next_diff_id, author, name, "", "delete")
        self._pending[diff.diff_id] = diff
        self._next_diff_id += 1
        return diff

    def approve(self, diff_id: int, reviewer: str) -> PumaApp | None:
        """Accept a diff; the change applies automatically.

        The reviewer must be a *second* engineer — self-approval is
        rejected, which is the whole point of the workflow.
        """
        if diff_id not in self._pending:
            raise ConfigError(f"no pending diff {diff_id}")
        diff = self._pending[diff_id]
        if reviewer == diff.author:
            raise ConfigError("a diff requires a second engineer's review")
        del self._pending[diff_id]
        if diff.action == "delete":
            self.delete(diff.app_name)
            return None
        return self.deploy(diff.source)

    def reject(self, diff_id: int) -> None:
        if diff_id not in self._pending:
            raise ConfigError(f"no pending diff {diff_id}")
        del self._pending[diff_id]

    def pending_diffs(self) -> list[PendingDiff]:
        return [self._pending[diff_id] for diff_id in sorted(self._pending)]

    def app(self, name: str) -> PumaApp:
        if name not in self._apps:
            raise ConfigError(f"no deployed app named {name!r}")
        return self._apps[name]

    def apps(self) -> list[str]:
        return sorted(self._apps)

    # -- operation ------------------------------------------------------------------

    def pump_all(self, max_messages: int = 1000) -> int:
        """Drive every deployed app once; return total events processed."""
        return sum(app.pump(max_messages) for app in self._apps.values())

    def lag_report(self) -> dict[str, int]:
        """Processing lag per app (Section 6.4's fleet-wide alerts)."""
        return {name: app.lag_messages() for name, app in self._apps.items()}

    def lag_alerts(self) -> list[str]:
        """Apps whose lag exceeds the alert threshold."""
        return sorted(
            name for name, lag in self.lag_report().items()
            if lag > self.lag_alert_threshold
        )
