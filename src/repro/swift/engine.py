"""The Swift engine: checkpointed at-least-once delivery to a client app.

The division of labour mirrors the paper: Swift owns reading the Scribe
bucket and checkpointing the offset every N messages or B bytes; the
client (historically a Python script across a system pipe) owns all
processing. A crash before the next checkpoint means the client sees
everything since the last checkpoint again — at-least-once delivery.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.errors import ConfigError, ProcessCrashed
from repro.scribe.checkpoints import Checkpoint, CheckpointStore
from repro.scribe.message import Message
from repro.scribe.reader import ScribeReader
from repro.scribe.store import ScribeStore


class SwiftClient(Protocol):
    """The app on the other side of the pipe: one call per message."""

    def __call__(self, message: Message) -> None: ...


class SwiftBatchClient(Protocol):
    """A batch-capable client: one call per delivery segment.

    A client exposing ``on_batch`` receives whole message lists instead
    of one call per message, removing the per-message call/bookkeeping
    overhead from the delivery loop. Segments are split exactly at the
    offsets where the per-message path would checkpoint, so checkpoint
    positions are byte-identical between the two client styles.
    """

    def on_batch(self, messages: list[Message]) -> None: ...


class SwiftApp:  # lint: effect[state=at_least_once, output=at_least_once]
    """One Swift consumer: a bucket tailer plus an offset checkpointer.

    ``checkpoint_every_messages`` / ``checkpoint_every_bytes``: whichever
    threshold is crossed first triggers an offset save (the paper's
    "every N strings or B bytes"). The offset is saved only *after* the
    client has seen every message below it, so delivery is at-least-once.
    """

    def __init__(self, name: str, scribe: ScribeStore, category: str,
                 bucket: int, client: SwiftClient,
                 checkpoints: CheckpointStore,
                 checkpoint_every_messages: int | None = 100,
                 checkpoint_every_bytes: int | None = None) -> None:
        if checkpoint_every_messages is None and checkpoint_every_bytes is None:
            raise ConfigError("need a message- or byte-based checkpoint trigger")
        self.name = name
        self.scribe = scribe
        self.category = category
        self.bucket = bucket
        self.client = client
        self.checkpoints = checkpoints
        self.every_messages = checkpoint_every_messages
        self.every_bytes = checkpoint_every_bytes
        self.crashed = False
        self._reader = ScribeReader(scribe, category, bucket)
        self._since_messages = 0
        self._since_bytes = 0
        self._resume()

    def _resume(self) -> None:
        saved = self.checkpoints.load(self.name, self.category, self.bucket)
        if saved is not None:
            self._reader.seek(saved.offset)

    # -- the consumption loop ----------------------------------------------------

    def pump(self, max_messages: int = 1000) -> int:
        """Deliver up to ``max_messages`` to the client; return count.

        A client exception is treated as the app crashing mid-stream:
        the offset is *not* advanced past undelivered work, so a restart
        replays from the last checkpoint.
        """
        if self.crashed:
            return 0
        delivered = 0
        on_batch = getattr(self.client, "on_batch", None)
        while delivered < max_messages:
            batch = self._reader.read_batch(
                min(1000, max_messages - delivered)
            )
            if not batch:
                break
            if on_batch is not None:
                count = self._deliver_batched(batch, on_batch)
            else:
                count = self._deliver_per_message(batch)
            delivered += count
            if self.crashed:
                break
        return delivered

    def _deliver_per_message(self, batch: list[Message]) -> int:
        delivered = 0
        client = self.client
        for message in batch:
            try:
                client(message)  # lint: effect[publish]
            except ProcessCrashed:
                self.crashed = True
                return delivered
            delivered += 1
            self._since_messages += 1
            self._since_bytes += message.size
            if self._checkpoint_due():
                self._save_checkpoint(message.offset + 1)
        return delivered

    def _deliver_batched(self, batch: list[Message], on_batch) -> int:
        """Deliver whole segments to a :class:`SwiftBatchClient`.

        Segment boundaries are computed with a cheap integer walk at the
        exact messages where the per-message path would have crossed a
        checkpoint threshold, so the saved offsets are identical. A
        crash inside ``on_batch`` counts the whole segment undelivered
        (its offset is never checkpointed, so restart replays it).
        """
        if self.every_bytes is None:
            return self._deliver_segments_by_count(batch, on_batch)
        delivered = 0
        start = 0
        since_messages = self._since_messages
        since_bytes = self._since_bytes
        every_messages = self.every_messages
        every_bytes = self.every_bytes
        for index, message in enumerate(batch):
            since_messages += 1
            since_bytes += message.size
            if ((every_messages is not None
                 and since_messages >= every_messages)
                    or (every_bytes is not None
                        and since_bytes >= every_bytes)):
                segment = batch[start:index + 1]
                try:
                    on_batch(segment)  # lint: effect[publish]
                except ProcessCrashed:
                    self.crashed = True
                    return delivered
                delivered += len(segment)
                self._since_messages = since_messages
                self._since_bytes = since_bytes
                self._save_checkpoint(message.offset + 1)
                since_messages = 0
                since_bytes = 0
                start = index + 1
        if start < len(batch):
            segment = batch[start:]
            try:
                on_batch(segment)  # lint: effect[publish]
            except ProcessCrashed:
                self.crashed = True
                return delivered
            delivered += len(segment)
            self._since_messages = since_messages
            self._since_bytes = since_bytes
        return delivered

    def _deliver_segments_by_count(self, batch: list[Message],
                                   on_batch) -> int:
        """Count-threshold-only delivery: boundaries by pure arithmetic.

        With no byte threshold configured, checkpoint positions depend
        only on the message count, so segment boundaries fall at fixed
        strides — no per-message walk at all, just slices. Byte
        accounting is skipped too: ``_since_bytes`` can never trigger
        anything when ``every_bytes`` is None, and every checkpoint
        resets it regardless.
        """
        every = self.every_messages
        delivered = 0
        start = 0
        total = len(batch)
        boundary = every - self._since_messages
        while boundary <= total:
            segment = batch[start:boundary]
            try:
                on_batch(segment)  # lint: effect[publish]
            except ProcessCrashed:
                self.crashed = True
                return delivered
            delivered += len(segment)
            self._save_checkpoint(batch[boundary - 1].offset + 1)
            start = boundary
            boundary += every
        if start < total:
            segment = batch[start:]
            try:
                on_batch(segment)  # lint: effect[publish]
            except ProcessCrashed:
                self.crashed = True
                return delivered
            delivered += len(segment)
            self._since_messages += total - start
        return delivered

    def _checkpoint_due(self) -> bool:
        if (self.every_messages is not None
                and self._since_messages >= self.every_messages):
            return True
        if (self.every_bytes is not None
                and self._since_bytes >= self.every_bytes):
            return True
        return False

    def _save_checkpoint(self, offset: int) -> None:
        self.checkpoints.save(
            self.name, self.category, self.bucket,
            Checkpoint(offset=offset, saved_at=self.scribe.clock.now()),
        )
        self._since_messages = 0
        self._since_bytes = 0

    # -- failure handling ---------------------------------------------------------

    def restart(self) -> None:
        """Restart the app from the latest checkpoint (at-least-once)."""
        self.crashed = False
        self._since_messages = 0
        self._since_bytes = 0
        saved = self.checkpoints.load(self.name, self.category, self.bucket)
        if saved is not None:
            self._reader.seek(saved.offset)
        else:
            # Offset 0 may already be trimmed by retention; an absolute
            # seek there would overstate lag until the first read skips
            # forward. Resume from the first retained offset instead.
            self._reader.seek_to_start()

    def lag_messages(self) -> int:
        return self._reader.lag_messages()

    @property
    def position(self) -> int:
        return self._reader.position


def crash_after(n: int, inner: Callable[[Message], None],
                scribe: ScribeStore) -> SwiftClient:
    """Wrap a client so it crashes after ``n`` successful messages.

    Test/demo helper: raises :class:`ProcessCrashed` on message ``n+1``.
    """
    remaining = [n]

    def client(message: Message) -> None:
        if remaining[0] <= 0:
            raise ProcessCrashed("swift-client", scribe.clock.now())
        inner(message)
        remaining[0] -= 1

    return client
