"""The Swift engine: checkpointed at-least-once delivery to a client app.

The division of labour mirrors the paper: Swift owns reading the Scribe
bucket and checkpointing the offset every N messages or B bytes; the
client (historically a Python script across a system pipe) owns all
processing. A crash before the next checkpoint means the client sees
everything since the last checkpoint again — at-least-once delivery.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.errors import ConfigError, ProcessCrashed
from repro.scribe.checkpoints import Checkpoint, CheckpointStore
from repro.scribe.message import Message
from repro.scribe.reader import ScribeReader
from repro.scribe.store import ScribeStore


class SwiftClient(Protocol):
    """The app on the other side of the pipe: one call per message."""

    def __call__(self, message: Message) -> None: ...


class SwiftApp:
    """One Swift consumer: a bucket tailer plus an offset checkpointer.

    ``checkpoint_every_messages`` / ``checkpoint_every_bytes``: whichever
    threshold is crossed first triggers an offset save (the paper's
    "every N strings or B bytes"). The offset is saved only *after* the
    client has seen every message below it, so delivery is at-least-once.
    """

    def __init__(self, name: str, scribe: ScribeStore, category: str,
                 bucket: int, client: SwiftClient,
                 checkpoints: CheckpointStore,
                 checkpoint_every_messages: int | None = 100,
                 checkpoint_every_bytes: int | None = None) -> None:
        if checkpoint_every_messages is None and checkpoint_every_bytes is None:
            raise ConfigError("need a message- or byte-based checkpoint trigger")
        self.name = name
        self.scribe = scribe
        self.category = category
        self.bucket = bucket
        self.client = client
        self.checkpoints = checkpoints
        self.every_messages = checkpoint_every_messages
        self.every_bytes = checkpoint_every_bytes
        self.crashed = False
        self._reader = ScribeReader(scribe, category, bucket)
        self._since_messages = 0
        self._since_bytes = 0
        self._resume()

    def _resume(self) -> None:
        saved = self.checkpoints.load(self.name, self.category, self.bucket)
        if saved is not None:
            self._reader.seek(saved.offset)

    # -- the consumption loop ----------------------------------------------------

    def pump(self, max_messages: int = 1000) -> int:
        """Deliver up to ``max_messages`` to the client; return count.

        A client exception is treated as the app crashing mid-stream:
        the offset is *not* advanced past undelivered work, so a restart
        replays from the last checkpoint.
        """
        if self.crashed:
            return 0
        delivered = 0
        while delivered < max_messages:
            batch = self._reader.read_batch(
                min(100, max_messages - delivered)
            )
            if not batch:
                break
            for message in batch:
                try:
                    self.client(message)
                except ProcessCrashed:
                    self.crashed = True
                    return delivered
                delivered += 1
                self._since_messages += 1
                self._since_bytes += message.size
                if self._checkpoint_due():
                    self._save_checkpoint(message.offset + 1)
        return delivered

    def _checkpoint_due(self) -> bool:
        if (self.every_messages is not None
                and self._since_messages >= self.every_messages):
            return True
        if (self.every_bytes is not None
                and self._since_bytes >= self.every_bytes):
            return True
        return False

    def _save_checkpoint(self, offset: int) -> None:
        self.checkpoints.save(
            self.name, self.category, self.bucket,
            Checkpoint(offset=offset, saved_at=self.scribe.clock.now()),
        )
        self._since_messages = 0
        self._since_bytes = 0

    # -- failure handling ---------------------------------------------------------

    def restart(self) -> None:
        """Restart the app from the latest checkpoint (at-least-once)."""
        self.crashed = False
        self._since_messages = 0
        self._since_bytes = 0
        saved = self.checkpoints.load(self.name, self.category, self.bucket)
        self._reader.seek(saved.offset if saved is not None else 0)

    def lag_messages(self) -> int:
        return self._reader.lag_messages()

    @property
    def position(self) -> int:
        return self._reader.position


def crash_after(n: int, inner: Callable[[Message], None],
                scribe: ScribeStore) -> SwiftClient:
    """Wrap a client so it crashes after ``n`` successful messages.

    Test/demo helper: raises :class:`ProcessCrashed` on message ``n+1``.
    """
    remaining = [n]

    def client(message: Message) -> None:
        if remaining[0] <= 0:
            raise ProcessCrashed("swift-client", scribe.clock.now())
        inner(message)
        remaining[0] -= 1

    return client
