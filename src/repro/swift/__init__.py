"""Swift: the basic checkpointing stream engine (paper Section 2.3).

Swift "provides a very simple API: you can read from a Scribe stream
with checkpoints every N strings or B bytes. If the app crashes, you can
restart from the latest checkpoint; all data is thus read at least once
from Scribe." The client app is a plain callable (standing in for the
process on the other side of the system-level pipe); performance and
fault tolerance beyond at-least-once replay are the client's problem.
"""

from repro.swift.engine import SwiftApp, SwiftClient

__all__ = ["SwiftApp", "SwiftClient"]
