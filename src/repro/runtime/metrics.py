"""Lightweight metrics: counters, gauges, and timers.

The paper stresses that operating hundreds of pipelines requires built-in
monitoring (Section 6.4). Every engine in this library reports through a
:class:`MetricsRegistry`; the monitoring package (processing-lag alerts)
and the benchmark harnesses read from it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.runtime.clock import Clock, WallClock


@dataclass
class Counter:
    """Monotonically increasing count (events processed, bytes read, ...)."""

    name: str
    value: float = 0.0

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """Point-in-time value (queue depth, lag seconds, memory bytes, ...)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Timer:
    """Accumulates durations; reports count / total / mean."""

    name: str
    count: int = 0
    total_seconds: float = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"timer {self.name!r} got negative duration")
        self.count += 1
        self.total_seconds += seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class _TimerContext:
    clock: Clock
    timer: Timer
    _start: float = field(default=0.0, init=False)

    def __enter__(self) -> "_TimerContext":
        self._start = self.clock.now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.timer.record(self.clock.now() - self._start)


class MetricsRegistry:
    """Namespace of metrics, created on first use.

    Names are conventionally dotted: ``"stylus.scorer.events_processed"``.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock if clock is not None else WallClock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def timer(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def time(self, name: str) -> _TimerContext:
        """Context manager recording the elapsed time into ``timer(name)``."""
        return _TimerContext(self._clock, self.timer(name))

    def snapshot(self) -> dict[str, float]:
        """Flatten every metric into a name -> value mapping."""
        flat: dict[str, float] = {}
        for counter in self._counters.values():
            flat[counter.name] = counter.value
        for gauge in self._gauges.values():
            flat[gauge.name] = gauge.value
        for timer in self._timers.values():
            flat[f"{timer.name}.count"] = float(timer.count)
            flat[f"{timer.name}.total_seconds"] = timer.total_seconds
        return flat

    def digest(self) -> str:
        """SHA-256 over the canonical snapshot.

        The determinism sanitizer's hook: two runs of the same seeded
        experiment must produce byte-identical digests. Names are sorted
        and floats rendered by ``json`` (repr-based), so the digest does
        not depend on metric creation order.
        """
        canonical = json.dumps(sorted(self.snapshot().items()),
                               separators=(",", ":"), allow_nan=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def find(self, prefix: str) -> dict[str, float]:
        """Return the snapshot entries whose name starts with ``prefix``.

        Filters each metric family directly rather than materializing a
        full :meth:`snapshot` — monitoring loops (lag polling, alert
        evaluation) call this every cycle against registries holding one
        metric per task, so the full flatten was an O(all metrics) tax
        per poll.
        """
        flat: dict[str, float] = {}
        for name, counter in self._counters.items():
            if name.startswith(prefix):
                flat[name] = counter.value
        for name, gauge in self._gauges.items():
            if name.startswith(prefix):
                flat[name] = gauge.value
        for name, timer in self._timers.items():
            count_name = f"{name}.count"
            total_name = f"{name}.total_seconds"
            if count_name.startswith(prefix):
                flat[count_name] = float(timer.count)
            if total_name.startswith(prefix):
                flat[total_name] = timer.total_seconds
        return flat
