"""Scripted and randomized failure injection.

A :class:`FailurePlan` binds crash/restart/machine-failure events to a
:class:`~repro.runtime.scheduler.Scheduler`, so experiments like Figure 7
("a failure happens at time T, what does the counter output look like
afterwards?") are reproducible, and hypothesis tests can generate random
crash schedules and assert semantics invariants under all of them.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.runtime.cluster import Cluster
from repro.runtime.scheduler import Scheduler


class FailureKind(enum.Enum):
    """What the injected event does."""

    CRASH_PROCESS = "crash_process"
    RESTART_PROCESS = "restart_process"
    FAIL_MACHINE = "fail_machine"
    REVIVE_MACHINE = "revive_machine"


@dataclass(frozen=True)
class FailureEvent:
    """One scripted event: do ``kind`` to ``target`` at time ``at``."""

    at: float
    kind: FailureKind
    target: str

    def apply(self, cluster: Cluster) -> None:
        if self.kind == FailureKind.CRASH_PROCESS:
            cluster.crash_process(self.target)
        elif self.kind == FailureKind.RESTART_PROCESS:
            cluster.restart_process(self.target)
        elif self.kind == FailureKind.FAIL_MACHINE:
            cluster.fail_machine(self.target)
        elif self.kind == FailureKind.REVIVE_MACHINE:
            cluster.revive_machine(self.target)


class FailurePlan:
    """An ordered script of failure events, installable on a scheduler."""

    def __init__(self, events: list[FailureEvent] | None = None) -> None:
        self.events: list[FailureEvent] = sorted(
            events or [], key=lambda event: event.at
        )

    # -- builders ----------------------------------------------------------

    def crash(self, process: str, at: float) -> "FailurePlan":
        self.events.append(FailureEvent(at, FailureKind.CRASH_PROCESS, process))
        return self

    def restart(self, process: str, at: float) -> "FailurePlan":
        self.events.append(FailureEvent(at, FailureKind.RESTART_PROCESS, process))
        return self

    def crash_and_restart(self, process: str, at: float,
                          downtime: float) -> "FailurePlan":
        """Crash at ``at`` and restart ``downtime`` seconds later."""
        return self.crash(process, at).restart(process, at + downtime)

    def fail_machine(self, machine: str, at: float) -> "FailurePlan":
        self.events.append(FailureEvent(at, FailureKind.FAIL_MACHINE, machine))
        return self

    def revive_machine(self, machine: str, at: float) -> "FailurePlan":
        self.events.append(FailureEvent(at, FailureKind.REVIVE_MACHINE, machine))
        return self

    @classmethod
    def random_crashes(cls, process: str, horizon: float, rate: float,
                       downtime: float, rng: random.Random) -> "FailurePlan":
        """Poisson crash arrivals over ``[0, horizon]`` with fixed downtime.

        Used by property tests to check semantics invariants under arbitrary
        crash schedules.
        """
        plan = cls()
        t = 0.0
        while True:
            t += rng.expovariate(rate)
            if t >= horizon:
                break
            plan.crash_and_restart(process, t, downtime)
            t += downtime
        return plan

    # -- installation ------------------------------------------------------

    def install(self, scheduler: Scheduler, cluster: Cluster) -> None:
        """Schedule every event onto ``scheduler`` against ``cluster``."""
        for event in sorted(self.events, key=lambda e: e.at):
            scheduler.at(event.at, _Applier(event, cluster))


class _Applier:
    """Callable wrapper so each event closes over its own binding."""

    def __init__(self, event: FailureEvent, cluster: Cluster) -> None:
        self._event = event
        self._cluster = cluster

    def __call__(self) -> None:
        self._event.apply(self._cluster)
