"""Scripted and randomized failure injection.

A :class:`FailurePlan` binds failure events to a
:class:`~repro.runtime.scheduler.Scheduler`, so experiments like Figure 7
("a failure happens at time T, what does the counter output look like
afterwards?") are reproducible, and property tests can generate random
fault schedules and assert semantics invariants under all of them.

Three fault families are scriptable:

- **process/machine faults** against a :class:`~repro.runtime.cluster.Cluster`
  (crash, restart, fail-machine, revive-machine) — the original Figure 10
  ladder;
- **store faults** against any target exposing ``set_available`` /
  ``set_slow_factor`` (:class:`~repro.storage.hdfs.HdfsBlobStore`,
  :class:`~repro.storage.zippydb.ZippyDb`,
  :class:`~repro.laser.service.LaserTable`): transient outage windows,
  latched outages that hold until explicitly healed, and slow-node
  injection that scales the store's modeled latency;
- **network partitions** against a :class:`Network`, cutting the link
  between two named tiers so every call across it raises
  :class:`~repro.errors.StoreUnavailable` until the partition heals.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Mapping, Protocol

from repro.errors import SimulationError, StoreUnavailable
from repro.runtime.cluster import Cluster
from repro.runtime.scheduler import Scheduler


class Network:
    """A symmetric partition map between named tiers.

    Components that model a cross-tier call hold a ``(network, link)``
    pair and ask :meth:`check` before the call; a cut link raises
    :class:`~repro.errors.StoreUnavailable` exactly like a store outage,
    because from the caller's side they are indistinguishable.
    """

    def __init__(self) -> None:
        self._cut: set[frozenset[str]] = set()

    def partition(self, a: str, b: str) -> None:
        """Cut the link between tiers ``a`` and ``b`` (both directions)."""
        self._cut.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._cut.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._cut.clear()

    def connected(self, a: str, b: str) -> bool:
        return frozenset((a, b)) not in self._cut

    def check(self, a: str, b: str, operation: str = "call") -> None:
        if not self.connected(a, b):
            raise StoreUnavailable(
                f"network partition between {a!r} and {b!r} during {operation}"
            )

    def partitions(self) -> list[tuple[str, str]]:
        return sorted(tuple(sorted(link)) for link in self._cut)


class FaultTarget(Protocol):
    """What a store must expose to be a fault-injection target."""

    def set_available(self, available: bool) -> None: ...

    def set_slow_factor(self, factor: float) -> None: ...


class FailureKind(enum.Enum):
    """What the injected event does."""

    CRASH_PROCESS = "crash_process"
    RESTART_PROCESS = "restart_process"
    FAIL_MACHINE = "fail_machine"
    REVIVE_MACHINE = "revive_machine"
    STORE_DOWN = "store_down"
    STORE_UP = "store_up"
    PARTITION = "partition"
    HEAL = "heal"
    SLOW_START = "slow_start"
    SLOW_END = "slow_end"


#: Kinds resolved against the cluster; the rest need stores or a network.
_CLUSTER_KINDS = frozenset({
    FailureKind.CRASH_PROCESS, FailureKind.RESTART_PROCESS,
    FailureKind.FAIL_MACHINE, FailureKind.REVIVE_MACHINE,
})


@dataclass(frozen=True)
class FailureEvent:
    """One scripted event: do ``kind`` to ``target`` at time ``at``.

    ``peer`` names the other end of a partition link; ``factor`` is the
    latency multiplier for slow-node events.
    """

    at: float
    kind: FailureKind
    target: str
    peer: str | None = None
    factor: float = 1.0

    def apply(self, cluster: Cluster | None = None,
              stores: Mapping[str, FaultTarget] | None = None,
              network: Network | None = None) -> None:
        kind = self.kind
        if kind in _CLUSTER_KINDS:
            if cluster is None:
                raise SimulationError(
                    f"{kind.value} event for {self.target!r} needs a cluster"
                )
            if kind == FailureKind.CRASH_PROCESS:
                cluster.crash_process(self.target)
            elif kind == FailureKind.RESTART_PROCESS:
                cluster.restart_process(self.target)
            elif kind == FailureKind.FAIL_MACHINE:
                cluster.fail_machine(self.target)
            else:
                cluster.revive_machine(self.target)
            return
        if kind in (FailureKind.PARTITION, FailureKind.HEAL):
            if network is None:
                raise SimulationError(
                    f"{kind.value} event for {self.target!r} needs a network"
                )
            if kind == FailureKind.PARTITION:
                network.partition(self.target, self.peer)
            else:
                network.heal(self.target, self.peer)
            return
        if stores is None or self.target not in stores:
            raise SimulationError(
                f"{kind.value} event targets unknown store {self.target!r}"
            )
        store = stores[self.target]
        if kind == FailureKind.STORE_DOWN:
            store.set_available(False)
        elif kind == FailureKind.STORE_UP:
            store.set_available(True)
        elif kind == FailureKind.SLOW_START:
            store.set_slow_factor(self.factor)
        else:
            store.set_slow_factor(1.0)


class FailurePlan:
    """An ordered script of failure events, installable on a scheduler."""

    def __init__(self, events: list[FailureEvent] | None = None) -> None:
        self.events: list[FailureEvent] = sorted(
            events or [], key=lambda event: event.at
        )

    # -- builders: cluster faults ------------------------------------------

    def crash(self, process: str, at: float) -> "FailurePlan":
        self.events.append(FailureEvent(at, FailureKind.CRASH_PROCESS, process))
        return self

    def restart(self, process: str, at: float) -> "FailurePlan":
        self.events.append(FailureEvent(at, FailureKind.RESTART_PROCESS, process))
        return self

    def crash_and_restart(self, process: str, at: float,
                          downtime: float) -> "FailurePlan":
        """Crash at ``at`` and restart ``downtime`` seconds later."""
        return self.crash(process, at).restart(process, at + downtime)

    def fail_machine(self, machine: str, at: float) -> "FailurePlan":
        self.events.append(FailureEvent(at, FailureKind.FAIL_MACHINE, machine))
        return self

    def revive_machine(self, machine: str, at: float) -> "FailurePlan":
        self.events.append(FailureEvent(at, FailureKind.REVIVE_MACHINE, machine))
        return self

    # -- builders: store faults --------------------------------------------

    def store_outage(self, store: str, at: float,
                     until: float) -> "FailurePlan":
        """A transient outage: the store heals on schedule at ``until``."""
        if until <= at:
            raise SimulationError("outage end must be after start")
        self.events.append(FailureEvent(at, FailureKind.STORE_DOWN, store))
        self.events.append(FailureEvent(until, FailureKind.STORE_UP, store))
        return self

    def latch_store_down(self, store: str, at: float) -> "FailurePlan":
        """A latched outage: the store stays down until scripted back up."""
        self.events.append(FailureEvent(at, FailureKind.STORE_DOWN, store))
        return self

    def restore_store(self, store: str, at: float) -> "FailurePlan":
        self.events.append(FailureEvent(at, FailureKind.STORE_UP, store))
        return self

    def slow_node(self, store: str, at: float, until: float,
                  factor: float) -> "FailurePlan":
        """Scale a store's modeled latency by ``factor`` over a window."""
        if until <= at:
            raise SimulationError("slow window end must be after start")
        if factor < 1.0:
            raise SimulationError("slow factor must be >= 1")
        self.events.append(
            FailureEvent(at, FailureKind.SLOW_START, store, factor=factor)
        )
        self.events.append(FailureEvent(until, FailureKind.SLOW_END, store))
        return self

    # -- builders: network faults ------------------------------------------

    def partition(self, a: str, b: str, at: float,
                  heal_at: float | None = None) -> "FailurePlan":
        """Cut the ``a``-``b`` link at ``at``; heal at ``heal_at`` if given."""
        self.events.append(FailureEvent(at, FailureKind.PARTITION, a, peer=b))
        if heal_at is not None:
            if heal_at <= at:
                raise SimulationError("heal must be after the partition")
            self.events.append(FailureEvent(heal_at, FailureKind.HEAL, a, peer=b))
        return self

    @classmethod
    def random_crashes(cls, process: str, horizon: float, rate: float,
                       downtime: float, rng: random.Random) -> "FailurePlan":
        """Poisson crash arrivals over ``[0, horizon]`` with fixed downtime.

        Used by property tests to check semantics invariants under arbitrary
        crash schedules.
        """
        plan = cls()
        t = 0.0
        while True:
            t += rng.expovariate(rate)
            if t >= horizon:
                break
            plan.crash_and_restart(process, t, downtime)
            t += downtime
        return plan

    @classmethod
    def random_chaos(cls, horizon: float, rng: random.Random,
                     processes: list[str] | tuple[str, ...] = (),
                     stores: list[str] | tuple[str, ...] = (),
                     links: list[tuple[str, str]] | tuple = (),
                     crash_rate: float = 0.05, downtime: float = 2.0,
                     outage_rate: float = 0.04, mean_outage: float = 4.0,
                     partition_rate: float = 0.03,
                     mean_partition: float = 3.0) -> "FailurePlan":
        """A whole chaos campaign schedule in one draw.

        Poisson arrivals per target: crash/restart pairs for every process,
        transient outage windows for every store, partition/heal windows
        for every link. Every window is clamped to end by ``horizon``, so
        a campaign that runs past the horizon is guaranteed to finish
        with everything healed — the "fault-free tail" that recovery
        invariants are asserted against.
        """
        plan = cls()
        for process in processes:
            t = 0.0
            while True:
                t += rng.expovariate(crash_rate)
                if t + downtime >= horizon:
                    break
                plan.crash_and_restart(process, t, downtime)
                t += downtime
        for store in stores:
            t = 0.0
            while True:
                t += rng.expovariate(outage_rate)
                if t >= horizon:
                    break
                length = min(rng.expovariate(1.0 / mean_outage),
                             horizon - t - 1e-9)
                if length > 0:
                    plan.store_outage(store, t, t + length)
                t += length
        for a, b in links:
            t = 0.0
            while True:
                t += rng.expovariate(partition_rate)
                if t >= horizon:
                    break
                length = min(rng.expovariate(1.0 / mean_partition),
                             horizon - t - 1e-9)
                if length > 0:
                    plan.partition(a, b, t, heal_at=t + length)
                t += length
        return plan

    # -- installation ------------------------------------------------------

    def install(self, scheduler: Scheduler, cluster: Cluster | None = None,
                stores: Mapping[str, FaultTarget] | None = None,
                network: Network | None = None) -> None:
        """Schedule every event onto ``scheduler`` against its targets."""
        for event in sorted(self.events, key=lambda e: e.at):
            scheduler.at(event.at, _Applier(event, cluster, stores, network))


class _Applier:
    """Callable wrapper so each event closes over its own binding."""

    def __init__(self, event: FailureEvent, cluster: Cluster | None,
                 stores: Mapping[str, FaultTarget] | None,
                 network: Network | None) -> None:
        self._event = event
        self._cluster = cluster
        self._stores = stores
        self._network = network

    def __call__(self) -> None:
        self._event.apply(self._cluster, self._stores, self._network)
