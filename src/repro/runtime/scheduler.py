"""Discrete-event simulation scheduler.

A minimal but complete event loop: callbacks are scheduled at absolute or
relative virtual times and executed in timestamp order (FIFO among equal
timestamps). The scheduler owns a :class:`~repro.runtime.clock.SimClock`
and advances it as events fire.

Recurring work (checkpoint timers, flush timers, lag monitors) is expressed
with :meth:`Scheduler.every`, which reschedules itself until cancelled.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.runtime.clock import SimClock


@dataclass(order=True)
class _ScheduledEvent:
    timestamp: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by ``at``/``after``/``every``; supports cancellation."""

    def __init__(self) -> None:
        self._events: list[_ScheduledEvent] = []
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent any pending (and, for ``every``, future) firings."""
        self._cancelled = True
        for event in self._events:
            event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _track(self, event: _ScheduledEvent) -> None:
        # Only events that may still be in the queue need cancelling
        # later; fired and cancelled ones are dead. A recurring handle
        # therefore tracks at most its single pending event, keeping the
        # per-firing cost O(1) instead of growing with the firing count.
        if self._events:
            self._events = [e for e in self._events
                            if not (e.cancelled or e.fired)]
        self._events.append(event)


class Scheduler:
    """Runs callbacks in virtual-time order on a shared :class:`SimClock`."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._running = False

    def now(self) -> float:
        return self.clock.now()

    # -- scheduling -------------------------------------------------------

    def at(self, timestamp: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``timestamp``."""
        if timestamp < self.clock.now():
            raise SimulationError(
                f"cannot schedule in the past: now={self.clock.now()}, at={timestamp}"
            )
        handle = EventHandle()
        event = _ScheduledEvent(timestamp, next(self._sequence), callback)
        handle._track(event)
        heapq.heappush(self._queue, event)
        return handle

    def after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.clock.now() + delay, callback)

    def every(self, interval: float, callback: Callable[[], None],
              start_after: float | None = None) -> EventHandle:
        """Schedule ``callback`` every ``interval`` seconds until cancelled.

        The first firing happens after ``start_after`` seconds (defaults to
        one full ``interval``).
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval}")
        handle = EventHandle()
        first_delay = interval if start_after is None else start_after

        def fire() -> None:
            if handle.cancelled:
                return
            callback()
            if not handle.cancelled:
                event = _ScheduledEvent(
                    self.clock.now() + interval, next(self._sequence), fire
                )
                handle._track(event)
                heapq.heappush(self._queue, event)

        event = _ScheduledEvent(
            self.clock.now() + first_delay, next(self._sequence), fire
        )
        handle._track(event)
        heapq.heappush(self._queue, event)
        return handle

    # -- execution --------------------------------------------------------

    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> bool:
        """Run the single next event; return False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            # A callback may itself have advanced the clock past the next
            # event's timestamp (retry backoff, modeled store latency);
            # the event is late, not in the past — fire it now.
            if event.timestamp > self.clock.now():
                self.clock.advance_to(event.timestamp)
            event.fired = True
            event.callback()
            return True
        return False

    def run_until(self, timestamp: float) -> None:
        """Run every event scheduled at or before ``timestamp``.

        The clock always lands exactly on ``timestamp`` afterwards, even if
        the last event fired earlier.
        """
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run)")
        self._running = True
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if head.timestamp > timestamp:
                    break
                heapq.heappop(self._queue)
                if head.timestamp > self.clock.now():
                    self.clock.advance_to(head.timestamp)
                head.fired = True
                head.callback()
            if timestamp > self.clock.now():
                self.clock.advance_to(timestamp)
        finally:
            self._running = False

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the queue completely; return the number of events run.

        ``max_events`` guards against runaway self-rescheduling loops.
        """
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise SimulationError(
                    f"scheduler exceeded {max_events} events; runaway loop?"
                )
        return count
