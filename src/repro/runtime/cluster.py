"""Simulated machines and processes.

The distinction that matters for the paper's fault-tolerance story
(Section 4.4.2, Figure 10) is *what survives which failure*:

- a **process crash** loses in-memory state but keeps the machine's local
  disk, so a restart on the same machine can recover from the local DB;
- a **machine failure** loses the local disk too, so recovery must come
  from a remote copy (HDFS backup or a remote database).

:class:`Machine` therefore owns a ``disk`` namespace that local stores
attach to; :meth:`Cluster.fail_machine` wipes it, while
:meth:`Cluster.crash_process` does not.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from repro.errors import SimulationError


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    RUNNING = "running"
    CRASHED = "crashed"
    STOPPED = "stopped"


class Process:
    """A named unit of execution pinned to a machine.

    Stream-processing engines register their in-memory state reset and
    recovery logic as callbacks; the cluster invokes them when it injects
    failures or restarts.
    """

    def __init__(self, name: str, machine: "Machine") -> None:
        self.name = name
        self.machine = machine
        self.state = ProcessState.RUNNING
        self._on_crash: list[Callable[[], None]] = []
        self._on_restart: list[Callable[[], None]] = []

    def on_crash(self, callback: Callable[[], None]) -> None:
        """Register a callback run when this process crashes."""
        self._on_crash.append(callback)

    def on_restart(self, callback: Callable[[], None]) -> None:
        """Register a callback run when this process restarts."""
        self._on_restart.append(callback)

    @property
    def running(self) -> bool:
        return self.state == ProcessState.RUNNING

    def _crash(self) -> None:
        if self.state != ProcessState.RUNNING:
            return
        self.state = ProcessState.CRASHED
        for callback in self._on_crash:
            callback()

    def _restart(self) -> None:
        if self.state == ProcessState.RUNNING:
            return
        self.state = ProcessState.RUNNING
        for callback in self._on_restart:
            callback()


class Machine:
    """A host with a local disk namespace and a set of processes."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.alive = True
        self.processes: dict[str, Process] = {}
        # Local stores (e.g. the LSM engine) keep their persistent
        # structures under a key in this dict; losing the machine loses it.
        self.disk: dict[str, Any] = {}

    def __repr__(self) -> str:
        status = "up" if self.alive else "down"
        return f"Machine({self.name!r}, {status}, {len(self.processes)} procs)"


class Cluster:
    """A set of machines plus failure-injection operations."""

    def __init__(self) -> None:
        self.machines: dict[str, Machine] = {}

    # -- topology ----------------------------------------------------------

    def add_machine(self, name: str) -> Machine:
        if name in self.machines:
            raise SimulationError(f"machine {name!r} already exists")
        machine = Machine(name)
        self.machines[name] = machine
        return machine

    def machine(self, name: str) -> Machine:
        if name not in self.machines:
            raise SimulationError(f"unknown machine {name!r}")
        return self.machines[name]

    def spawn(self, process_name: str, machine_name: str) -> Process:
        """Start a process on a machine; names are cluster-unique."""
        machine = self.machine(machine_name)
        if not machine.alive:
            raise SimulationError(f"machine {machine_name!r} is down")
        if self.find_process(process_name) is not None:
            raise SimulationError(f"process {process_name!r} already exists")
        process = Process(process_name, machine)
        machine.processes[process_name] = process
        return process

    def find_process(self, name: str) -> Process | None:
        for machine in self.machines.values():
            if name in machine.processes:
                return machine.processes[name]
        return None

    def process(self, name: str) -> Process:
        found = self.find_process(name)
        if found is None:
            raise SimulationError(f"unknown process {name!r}")
        return found

    # -- failure injection ---------------------------------------------------

    def crash_process(self, name: str) -> None:
        """Kill a process; the machine's disk survives."""
        self.process(name)._crash()

    def restart_process(self, name: str) -> None:
        """Restart a crashed process on the same machine."""
        process = self.process(name)
        if not process.machine.alive:
            raise SimulationError(
                f"cannot restart {name!r}: machine {process.machine.name!r} is down"
            )
        process._restart()

    def stop_process(self, name: str) -> None:
        """Stop a process gracefully: no crash callbacks fire."""
        process = self.process(name)
        if process.state == ProcessState.RUNNING:
            process.state = ProcessState.STOPPED

    def terminate_process(self, name: str) -> None:
        """Decommission a process entirely, freeing its name for reuse.

        Graceful (no crash callbacks): the caller is expected to have
        drained or handed off the process's state first — this is the
        shard-merge retirement path, not a failure injection.
        """
        process = self.process(name)
        process.state = ProcessState.STOPPED
        del process.machine.processes[name]

    def fail_machine(self, name: str) -> None:
        """Take a machine down: crash its processes and wipe its disk."""
        machine = self.machine(name)
        machine.alive = False
        machine.disk.clear()
        for process in machine.processes.values():
            process._crash()

    def revive_machine(self, name: str) -> Machine:
        """Bring a machine back up with an empty disk; processes stay crashed."""
        machine = self.machine(name)
        machine.alive = True
        return machine

    def move_process(self, process_name: str, machine_name: str) -> Process:
        """Re-home a crashed process onto another (live) machine.

        Models the paper's "if a machine is overloaded, we simply move
        some jobs to a new machine and they pick up processing the input
        stream from where they left off" (Section 4.2.2).
        """
        process = self.process(process_name)
        if process.running:
            raise SimulationError(f"stop or crash {process_name!r} before moving it")
        target = self.machine(machine_name)
        if not target.alive:
            raise SimulationError(f"machine {machine_name!r} is down")
        del process.machine.processes[process_name]
        process.machine = target
        target.processes[process_name] = process
        return process
