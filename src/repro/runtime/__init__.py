"""Deterministic simulated-cluster runtime.

The paper's evaluation depends on behaviours — crashes at known points,
checkpoint intervals, recovery, processing lag — that are only reproducible
on a controlled clock. This package provides:

- :class:`~repro.runtime.clock.SimClock`: virtual time, advanced explicitly.
- :class:`~repro.runtime.scheduler.Scheduler`: a discrete-event loop.
- :class:`~repro.runtime.cluster.Cluster` and
  :class:`~repro.runtime.cluster.Machine`: where simulated processes live.
- :class:`~repro.runtime.failures.FailurePlan`: scripted crash, outage,
  partition, and slow-node injection (with :class:`~repro.runtime.failures.Network`).
- :class:`~repro.runtime.retry.RetryPolicy` /
  :class:`~repro.runtime.retry.Retrier`: bounded retry with deterministic
  backoff for every cross-tier call.
- :class:`~repro.runtime.metrics.MetricsRegistry`: counters / gauges / timers.
- :func:`~repro.runtime.rng.make_rng`: seeded random streams per component.
"""

from repro.runtime.clock import Clock, SimClock, WallClock
from repro.runtime.cluster import Cluster, Machine, Process, ProcessState
from repro.runtime.failures import (
    FailureEvent,
    FailureKind,
    FailurePlan,
    Network,
)
from repro.runtime.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.runtime.retry import RETRYABLE, Retrier, RetryPolicy
from repro.runtime.rng import make_rng
from repro.runtime.scheduler import Scheduler

__all__ = [
    "Clock",
    "Cluster",
    "Counter",
    "FailureEvent",
    "FailureKind",
    "FailurePlan",
    "Gauge",
    "Machine",
    "MetricsRegistry",
    "Network",
    "Process",
    "ProcessState",
    "RETRYABLE",
    "Retrier",
    "RetryPolicy",
    "Scheduler",
    "SimClock",
    "Timer",
    "WallClock",
    "make_rng",
]
