"""Sharded multi-process topologies over the simulated cluster.

Every system in the paper's ecosystem parallelizes the same way: split
the input Scribe category into buckets and fan the buckets out to
independent processes (Section 2.1). This module builds that shape on
the simulated :class:`~repro.runtime.cluster.Cluster`:

- a :class:`ShardedTopology` owns N *shards*, each a cluster
  :class:`~repro.runtime.cluster.Process` placed by the
  :class:`~repro.runtime.loadbalancer.LoadBalancer` and running one
  worker (a set of Stylus tasks, or a Puma app instance pinned to a
  bucket subset);
- buckets map to shards through a consistent-hash
  :class:`~repro.core.sharding.HashRing`, so changing the shard count
  moves only ~1/N of the buckets;
- splits and merges run a **pause → transfer → resume** protocol
  (the elasticity literature's standard reconfiguration): the losing
  shard checkpoints and releases each moving bucket, durable state
  hands off through the :class:`~repro.storage.backup.BackupEngine`
  (Stylus) or the shared HBase namespace (Puma), and the gaining shard
  adopts the bucket at its saved offset. A ``rebalance_fault_hook``
  fires between release and adopt so chaos schedules can kill an owner
  mid-handoff;
- per-process work is charged to a modeled
  :class:`~repro.core.costs.ResourceTimeline` (one per shard), so
  throughput scaling is measured on the deterministic simulated
  timeline rather than noisy wall clocks: the makespan is the busiest
  shard's elapsed time, and near-linear scaling means the makespan
  shrinks almost as 1/N.

Workers implement a small duck-typed contract (:class:`ShardWorker`).
Two implementations ship here: :class:`StylusShardWorker` (one
:class:`~repro.stylus.engine.StylusTask` per bucket, each with a
:class:`~repro.stylus.state.LocalDbStateBackend` on the owning
machine's disk) and :class:`PumaShardWorker` (one
:class:`~repro.puma.app.PumaApp` pinned to the shard's buckets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.core.costs import CostModel, ResourceTimeline
from repro.core.semantics import OutputSemantics
from repro.core.sharding import HashRing
from repro.errors import (BackupNotFound, ConfigError, SimulationError,
                          StoreUnavailable)
from repro.runtime.cluster import Cluster, Process
from repro.runtime.loadbalancer import JobSpec, LoadBalancer
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.scheduler import Scheduler
from repro.scribe.store import ScribeStore
from repro.storage.backup import BackupEngine
from repro.stylus.engine import StylusTask
from repro.stylus.processor import MonoidProcessor
from repro.stylus.state import LocalDbStateBackend


class ShardWorker(Protocol):
    """What a topology needs from the thing running inside each shard."""

    def pump(self, max_messages: int = 1000) -> int: ...

    def lag_messages(self) -> int: ...

    def buckets(self) -> list[int]: ...

    def checkpoint_all(self) -> None: ...

    def release_bucket(self, bucket: int) -> Any:
        """Flush the bucket's durable state and detach it; returns an
        opaque handoff token passed to the adopter."""
        ...

    def adopt_bucket(self, bucket: int, token: Any) -> None:
        """Attach a released bucket, resuming from its durable state."""
        ...

    def bucket_position(self, bucket: int) -> int:
        """The consumer read position for an owned bucket."""
        ...

    def handle_crash(self) -> None: ...

    def handle_restart(self) -> None: ...


WorkerFactory = Callable[[str, Process, list[int]], ShardWorker]


@dataclass
class _Shard:
    name: str
    process: Process
    worker: ShardWorker


class ShardedTopology:
    """N worker processes over one category's buckets, rebalanceable live."""

    def __init__(self, name: str, cluster: Cluster, scribe: ScribeStore,
                 category: str, num_shards: int,
                 worker_factory: WorkerFactory,
                 balancer: LoadBalancer | None = None,
                 metrics: MetricsRegistry | None = None,
                 cost_model: CostModel | None = None,
                 pump_overhead_seconds: float = 0.0,
                 ring_replicas: int = 64) -> None:
        if num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        if pump_overhead_seconds < 0:
            raise ConfigError("pump_overhead_seconds must be >= 0")
        self.name = name
        self.cluster = cluster
        self.scribe = scribe
        self.category = category
        self.num_buckets = scribe.category(category).num_buckets
        if num_shards > self.num_buckets:
            raise ConfigError(
                f"{num_shards} shards over {self.num_buckets} buckets: "
                "shards beyond the bucket count would sit idle"
            )
        self.balancer = balancer if balancer is not None \
            else LoadBalancer(cluster)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._worker_factory = worker_factory
        self._cost_model = cost_model
        self._pump_overhead = pump_overhead_seconds
        self._shards: dict[str, _Shard] = {}
        # Modeled per-process timelines survive shard retirement so a
        # re-created shard (merge then split) continues its history and
        # the makespan never forgets work already performed.
        self._timelines: dict[str, ResourceTimeline] = {}
        #: True while a split/merge is in flight. The autoscaler checks
        #: this to defer rather than drop actions that land mid-handoff.
        self.rebalancing = False
        #: Chaos hook fired with the phase name ("transfer") between the
        #: release and adopt phases of a rebalance — the window in which
        #: killing a shard owner must still lose nothing.
        self.rebalance_fault_hook: Callable[[str], None] | None = None

        self._rebalances_counter = self.metrics.counter(
            f"topology.{name}.rebalances")
        self._moved_counter = self.metrics.counter(
            f"topology.{name}.buckets_moved")
        self._shards_gauge = self.metrics.gauge(f"topology.{name}.shards")
        # Per-shard cost distribution. modeled_elapsed() reports only the
        # makespan; a hot-key workload that buries one shard is invisible
        # in the max alone, so the spread is surfaced too (see
        # shard_costs()).
        self._cost_p99_gauge = self.metrics.gauge(
            f"topology.{name}.shard_cost_p99")
        self._cost_max_gauge = self.metrics.gauge(
            f"topology.{name}.shard_cost_max")
        self._cost_imbalance_gauge = self.metrics.gauge(
            f"topology.{name}.shard_cost_imbalance")

        self._ring = HashRing(replicas=ring_replicas)
        for index in range(num_shards):
            self._ring.add_node(self._shard_name(index))
        self._assignment = self._ring.assign_buckets(self.num_buckets)
        self.num_shards = num_shards
        for index in range(num_shards):
            shard_name = self._shard_name(index)
            buckets = sorted(b for b, owner in self._assignment.items()
                             if owner == shard_name)
            self._create_shard(shard_name, buckets)
        self._shards_gauge.set(num_shards)

    # -- shape --------------------------------------------------------------

    def _shard_name(self, index: int) -> str:
        return f"{self.name}-s{index:03d}"

    def shard_names(self) -> list[str]:
        return sorted(self._shards)

    def worker(self, shard_name: str) -> ShardWorker:
        return self._shards[shard_name].worker

    def process(self, shard_name: str) -> Process:
        return self._shards[shard_name].process

    def owner_of(self, bucket: int) -> str:
        if bucket not in self._assignment:
            raise ConfigError(f"bucket {bucket} out of range")
        return self._assignment[bucket]

    def assignment(self) -> dict[int, str]:
        return dict(self._assignment)

    def _create_shard(self, shard_name: str, buckets: list[int]) -> _Shard:
        machine = self.balancer.place(
            JobSpec(shard_name, load=float(len(buckets)) or 1.0)
        )
        process = self.cluster.spawn(shard_name, machine)
        worker = self._worker_factory(shard_name, process, buckets)
        process.on_crash(worker.handle_crash)
        process.on_restart(worker.handle_restart)
        shard = _Shard(shard_name, process, worker)
        self._shards[shard_name] = shard
        self._timelines.setdefault(shard_name, ResourceTimeline())
        return shard

    def _retire_shard(self, shard_name: str) -> None:
        del self._shards[shard_name]
        self.balancer.remove(shard_name)
        self.cluster.terminate_process(shard_name)

    # -- driving ------------------------------------------------------------

    def pump_all(self, max_messages: int = 1000) -> int:
        """One pump round across every live shard; crashed shards skip.

        With a cost model attached, each shard's work is charged to its
        own process timeline — shards run on different machines, so the
        modeled makespan is the *max* over shards, which is what makes
        N-shard scaling measurable deterministically.
        """
        total = 0
        cost = self._cost_model
        for shard_name in sorted(self._shards):
            shard = self._shards[shard_name]
            if not shard.process.running:
                continue
            pumped = shard.worker.pump(max_messages)
            total += pumped
            if cost is not None and pumped:
                self._timelines[shard_name].charge(
                    "cpu",
                    pumped * cost.cpu_per_event + self._pump_overhead,
                )
        if cost is not None and total:
            self._update_cost_gauges()
        return total

    def drain(self, batch: int = 10_000) -> int:
        """Pump until no live shard has lag; returns messages processed."""
        total = 0
        while True:
            pumped = self.pump_all(batch)
            total += pumped
            if pumped == 0:
                return total

    def schedule_on(self, scheduler: Scheduler, interval: float,
                    max_messages: int = 1000) -> None:
        """Drive every shard from the deterministic scheduler."""
        scheduler.every(interval, lambda: self.pump_all(max_messages))

    def lag_messages(self) -> int:
        return sum(shard.worker.lag_messages()
                   for _, shard in sorted(self._shards.items()))

    def checkpoint_all(self) -> None:
        for shard_name in sorted(self._shards):
            self._shards[shard_name].worker.checkpoint_all()

    def modeled_elapsed(self) -> float:
        """The simulated makespan: the busiest process's elapsed time."""
        return max((timeline.elapsed()
                    for timeline in self._timelines.values()), default=0.0)

    def shard_costs(self) -> dict[str, float]:
        """Modeled cumulative cost per *live* shard.

        Retired shards' timelines still count toward the makespan (their
        work happened) but drop out of the distribution gauges: the
        question those answer is "how skewed is the cluster right now".
        """
        return {name: self._timelines[name].elapsed()
                for name in sorted(self._shards)}

    def _update_cost_gauges(self) -> None:
        costs = sorted(self.shard_costs().values())
        if not costs:
            return
        rank = max(0, -(-len(costs) * 99 // 100) - 1)  # ceil, 1-indexed
        self._cost_p99_gauge.set(costs[rank])
        self._cost_max_gauge.set(costs[-1])
        mean = sum(costs) / len(costs)
        self._cost_imbalance_gauge.set(costs[-1] / mean if mean > 0 else 1.0)

    # -- the autoscaler contract (Section 6.4) ------------------------------

    def input_category(self) -> str:
        return self.category

    # -- live rebalancing (pause -> transfer -> resume) ---------------------

    def rebalance(self, new_num_shards: int) -> list[int]:
        """Split or merge to ``new_num_shards``; returns moved buckets.

        The losing shard checkpoints-and-releases each moving bucket
        (pause), durable state travels through the backup engine or the
        shared state namespace (transfer), and the gaining shard adopts
        at the saved offset (resume). Only buckets whose ring owner
        changed move — the consistent-hashing guarantee. Shards left
        with no buckets after a merge are retired from the cluster.
        """
        if new_num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        if new_num_shards > self.num_buckets:
            raise ConfigError(
                f"{new_num_shards} shards over {self.num_buckets} buckets: "
                "shards beyond the bucket count would sit idle"
            )
        if self.rebalancing:
            raise SimulationError(
                f"topology {self.name!r}: a rebalance is already in flight"
            )
        new_names = [self._shard_name(i) for i in range(new_num_shards)]
        if new_num_shards == self.num_shards:
            return []
        self.rebalancing = True
        try:
            new_ring = HashRing(new_names, replicas=self._ring.replicas)
            new_assignment = new_ring.assign_buckets(self.num_buckets)
            moved = sorted(bucket for bucket, owner in new_assignment.items()
                           if owner != self._assignment[bucket])

            # Pause + release: the current owner flushes each moving
            # bucket's state and detaches it.
            tokens: dict[int, Any] = {}
            for bucket in moved:
                source = self._shards[self._assignment[bucket]]
                tokens[bucket] = source.worker.release_bucket(bucket)

            # Transfer window: state is durable, nobody owns the bucket.
            hook = self.rebalance_fault_hook
            if hook is not None:
                hook("transfer")

            # Resume: spawn shards a split added, then adopt.
            for shard_name in new_names:
                if shard_name not in self._shards:
                    self._create_shard(shard_name, [])
            for bucket in moved:
                target = self._shards[new_assignment[bucket]]
                target.worker.adopt_bucket(bucket, tokens[bucket])

            # Retire shards a merge emptied.
            for shard_name in sorted(set(self._shards) - set(new_names)):
                self._retire_shard(shard_name)

            # Credit accounting across the handoff: the adopter may
            # resume behind the old owner's read position (re-reads will
            # re-grant, clamped) or *ahead* of trimmed history no reader
            # will ever grant. Reset each moved bucket's outstanding
            # count to the adopter's true unread tail, so a producer can
            # never block forever on credits the old owner took to its
            # grave (see repro.scribe.flow).
            if self.scribe.gate_for(self.category) is not None:
                for bucket in moved:
                    worker = self._shards[new_assignment[bucket]].worker
                    self.scribe.reconcile_credits(
                        self.category, bucket,
                        worker.bucket_position(bucket))

            self._ring = new_ring
            self._assignment = new_assignment
            self.num_shards = new_num_shards
            self._rebalances_counter.increment()
            self._moved_counter.increment(len(moved))
            self._shards_gauge.set(new_num_shards)
            return moved
        finally:
            self.rebalancing = False


class StylusShardWorker:
    """One Stylus task per owned bucket, state in per-bucket local DBs.

    Each bucket's state lives in a :class:`LocalDbStateBackend` named
    after the bucket (stable across shards) on the owning machine's
    disk. Handoff is therefore checkpoint → HDFS backup → restore on
    the adopter's machine: exactly the paper's machine-failure recovery
    path (Figure 10), reused for planned moves.
    """

    def __init__(self, shard_name: str, process: Process,
                 scribe: ScribeStore, input_category: str,
                 processor_factory: Callable[[], Any],
                 backup_engine: BackupEngine, state_prefix: str,
                 buckets: list[int],
                 task_kwargs: dict[str, Any] | None = None) -> None:
        self.shard_name = shard_name
        self.process = process
        self.scribe = scribe
        self.input_category = input_category
        self.processor_factory = processor_factory
        self.backup_engine = backup_engine
        self.state_prefix = state_prefix
        self.task_kwargs = dict(task_kwargs or {})
        registry = self.task_kwargs.get("metrics")
        if registry is None:
            registry = MetricsRegistry()
        # Degraded-mode accounting: adoptions that found no restorable
        # backup and fell back to a fresh replay-from-start.
        self._fallback_counter = registry.counter(
            f"topology.{state_prefix}.adopt_fallbacks")
        # Messages an at-most-once fallback gave up rather than re-emit.
        self._skipped_counter = registry.counter(
            f"topology.{state_prefix}.messages_skipped")
        self._tasks: dict[int, StylusTask] = {}
        for bucket in sorted(buckets):
            processor = processor_factory()
            backend = LocalDbStateBackend(
                self._store_name(bucket), process.machine.disk,
                backup_engine=backup_engine,
                merge_operator=self._merge_operator(processor),
            )
            self._tasks[bucket] = self._make_task(bucket, processor, backend)

    def _store_name(self, bucket: int) -> str:
        return f"{self.state_prefix}[{bucket}]"

    @staticmethod
    def _merge_operator(processor: Any):
        if isinstance(processor, MonoidProcessor):
            return processor.merge_operator()
        return None

    def _make_task(self, bucket: int, processor: Any,
                   backend: LocalDbStateBackend) -> StylusTask:
        return StylusTask(self._store_name(bucket), self.scribe,
                          self.input_category, bucket, processor,
                          state_backend=backend, **self.task_kwargs)

    # -- ShardWorker contract -----------------------------------------------

    def buckets(self) -> list[int]:
        return sorted(self._tasks)

    def task(self, bucket: int) -> StylusTask:
        return self._tasks[bucket]

    def pump(self, max_messages: int = 1000) -> int:
        return sum(self._tasks[bucket].pump(max_messages)
                   for bucket in sorted(self._tasks))

    def lag_messages(self) -> int:
        return sum(task.lag_messages() for task in self._tasks.values())

    def checkpoint_all(self) -> None:
        for bucket in sorted(self._tasks):
            task = self._tasks[bucket]
            if not task.crashed:
                task.checkpoint_now()

    def release_bucket(self, bucket: int) -> Any:
        """Checkpoint the bucket's task and snapshot its store to HDFS.

        A crashed owner releases too: its in-memory state is gone, but
        the local DB on the (surviving) machine disk holds the last
        checkpoint, which is exactly what each semantics is entitled to.
        Returns the :class:`~repro.storage.backup.BackupInfo` token, or
        None when HDFS refused the snapshot — the adopter then falls
        back to the newest earlier backup.
        """
        if bucket not in self._tasks:
            raise ConfigError(
                f"shard {self.shard_name!r} does not own bucket {bucket}"
            )
        task = self._tasks.pop(bucket)
        if not task.crashed:
            task.checkpoint_now()
        backend = task.state_backend
        assert isinstance(backend, LocalDbStateBackend)
        return self.backup_engine.create_backup(backend.store)

    def adopt_bucket(self, bucket: int, token: Any) -> None:
        """Restore the bucket's store onto this machine and resume.

        With no backup reachable — HDFS lost every snapshot attempt
        (:class:`BackupNotFound`) or is down past the retry budget
        (:class:`StoreUnavailable`, counted by the engine's retry
        layer) — the adopter starts fresh and replays the bucket from
        the beginning. State and offset reset *together*, so the replay
        recounts exactly; only the recovery cost degrades.

        Exception: a task whose *output* semantics is at-most-once must
        not replay — the old owner already published that history, and a
        fresh replay would emit it a second time (loss is the direction
        at-most-once may err in; duplication never is). Such a task
        resumes at the bucket's tail instead, and the span it gave up is
        counted in ``topology.<prefix>.messages_skipped``.
        """
        if bucket in self._tasks:
            raise ConfigError(
                f"shard {self.shard_name!r} already owns bucket {bucket}"
            )
        processor = self.processor_factory()
        merge_operator = self._merge_operator(processor)
        disk = self.process.machine.disk
        fresh = False
        try:
            backend = LocalDbStateBackend.adopt(
                self._store_name(bucket), disk, self.backup_engine,
                merge_operator=merge_operator,
                backup_id=token.backup_id if token is not None else None,
            )
        except (BackupNotFound, StoreUnavailable):
            # The engine's retry layer already counted the outage; this
            # records the visible degradation it caused here.
            self._fallback_counter.increment()
            fresh = True
            backend = LocalDbStateBackend(
                self._store_name(bucket), disk,
                backup_engine=self.backup_engine,
                merge_operator=merge_operator,
            )
        task = self._make_task(bucket, processor, backend)
        if fresh and task.semantics.output is OutputSemantics.AT_MOST_ONCE:
            tail = self.scribe.end_offset(self.input_category, bucket)
            first = self.scribe.first_retained_offset(self.input_category,
                                                      bucket)
            backend.save_offset(tail)
            self._skipped_counter.increment(tail - first)
        task.restart()  # seek to the restored offset, load restored state
        if not self.process.running:
            # Adopted into a crashed process: the task holds no live
            # memory until the process restarts and recovers it.
            task.crash()
        self._tasks[bucket] = task

    def bucket_position(self, bucket: int) -> int:
        return self._tasks[bucket].position

    def handle_crash(self) -> None:
        for bucket in sorted(self._tasks):
            self._tasks[bucket].crash()

    def handle_restart(self) -> None:
        for bucket in sorted(self._tasks):
            task = self._tasks[bucket]
            if task.crashed:
                task.restart()


class PumaShardWorker:
    """One :class:`~repro.puma.app.PumaApp` pinned to the shard's buckets.

    Puma instances of the same plan share one HBase namespace — offset
    rows are per-bucket, state rows merge monoidally — so a handoff is
    just flush-then-reattach; no bulk state copy ever moves.
    """

    def __init__(self, shard_name: str, process: Process, plan: Any,
                 scribe: ScribeStore, hbase: Any, buckets: list[int],
                 app_kwargs: dict[str, Any] | None = None) -> None:
        from repro.puma.app import PumaApp  # avoid a runtime import cycle

        self.shard_name = shard_name
        self.process = process
        self.app = PumaApp(plan, scribe, hbase, buckets=sorted(buckets),
                           **(app_kwargs or {}))

    # -- ShardWorker contract -----------------------------------------------

    def buckets(self) -> list[int]:
        return sorted(self.app.buckets)

    def pump(self, max_messages: int = 1000) -> int:
        return self.app.pump(max_messages)

    def lag_messages(self) -> int:
        return self.app.lag_messages()

    def checkpoint_all(self) -> None:
        if not self.app.crashed:
            self.app.checkpoint()

    def release_bucket(self, bucket: int) -> Any:
        self.app.release_bucket(bucket)
        return None  # durable state is shared; nothing travels

    def adopt_bucket(self, bucket: int, token: Any) -> None:
        self.app.adopt_bucket(bucket)

    def bucket_position(self, bucket: int) -> int:
        return self.app.bucket_position(bucket)

    def handle_crash(self) -> None:
        if not self.app.crashed:
            self.app.crash()

    def handle_restart(self) -> None:
        if self.app.crashed:
            self.app.restart()


def stylus_worker_factory(scribe: ScribeStore, input_category: str,
                          processor_factory: Callable[[], Any],
                          backup_engine: BackupEngine, state_prefix: str,
                          **task_kwargs: Any) -> WorkerFactory:
    """Worker factory for :class:`ShardedTopology` running Stylus tasks."""

    def factory(shard_name: str, process: Process,
                buckets: list[int]) -> StylusShardWorker:
        return StylusShardWorker(shard_name, process, scribe, input_category,
                                 processor_factory, backup_engine,
                                 state_prefix, buckets, task_kwargs)

    return factory


def puma_worker_factory(plan: Any, scribe: ScribeStore, hbase: Any,
                        **app_kwargs: Any) -> WorkerFactory:
    """Worker factory for :class:`ShardedTopology` running one Puma app
    instance per shard."""

    def factory(shard_name: str, process: Process,
                buckets: list[int]) -> PumaShardWorker:
        return PumaShardWorker(shard_name, process, plan, scribe, hbase,
                               buckets, app_kwargs)

    return factory
