"""Bounded retry with exponential backoff and deterministic jitter.

The paper's tiers survive each other's outages because every cross-tier
call is allowed to fail: "if HDFS is not available for writes, processing
continues without remote backup copies" (Section 4.4.2). This module is
the shared policy layer for those calls. A :class:`RetryPolicy` bounds
the attempts and spaces them with exponential backoff; a :class:`Retrier`
executes calls under a policy, charges backoff waits to the (simulated)
clock, and reports every failure, recovery, and give-up through
:class:`~repro.runtime.metrics.MetricsRegistry` counters so that no
:class:`~repro.errors.StoreUnavailable` window is ever silently dropped.

Jitter is drawn from :func:`~repro.runtime.rng.make_rng`, so two runs of
the same experiment back off identically — chaos schedules stay
reproducible down to the retry timing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigError, StoreUnavailable, TransactionAborted
from repro.runtime.clock import Clock
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.rng import make_rng

#: Exceptions a retrier treats as transient by default. ``TransactionAborted``
#: is included because ZippyDB wraps quorum loss in it (Section 4.3.2's
#: high-latency transactions abort rather than block).
RETRYABLE = (StoreUnavailable, TransactionAborted)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try a flaky call, and how long to wait between.

    ``max_attempts`` counts the first call too: ``max_attempts=1`` means
    no retries at all. The delay before retry *k* (1-based) is
    ``base_delay * multiplier**(k-1)`` capped at ``max_delay``, scaled by
    a jitter factor drawn uniformly from ``[1-jitter, 1+jitter]``.
    ``timeout`` bounds the whole call: once the clock passes
    ``start + timeout`` no further retry is attempted.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError("timeout must be positive")

    @classmethod
    def no_retries(cls) -> "RetryPolicy":
        """Fail fast: one attempt, no waiting."""
        return cls(max_attempts=1, base_delay=0.0, max_delay=0.0, jitter=0.0)

    def backoff_delay(self, failures: int,
                      rng: random.Random | None = None) -> float:
        """The wait before retrying after ``failures`` (>= 1) failures."""
        if failures < 1:
            raise ConfigError("backoff_delay needs failures >= 1")
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** (failures - 1))
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw


class Retrier:
    """Executes calls under a :class:`RetryPolicy`, with full accounting.

    Counters (under ``{scope}.retry.``):

    - ``attempts`` — every call made, including first tries;
    - ``failures`` — every retryable exception seen;
    - ``recoveries`` — calls that succeeded after at least one failure;
    - ``give_ups`` — calls abandoned with the last error re-raised.

    The invariant callers rely on: every retryable failure either ends in
    a recovery or in a give-up, and give-ups re-raise — so the caller's
    degraded-mode path runs (and counts) exactly once per abandoned call.

    Backoff waits advance the clock when it supports ``advance`` (a
    :class:`~repro.runtime.clock.SimClock`); under a wall clock the wait
    is skipped rather than stalling the process with a real sleep.
    """

    def __init__(self, policy: RetryPolicy | None = None,
                 clock: Clock | None = None,
                 rng: random.Random | None = None,
                 metrics: MetricsRegistry | None = None,
                 scope: str = "retry") -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock
        self.rng = rng if rng is not None else make_rng(0, scope)
        self.scope = scope
        registry = metrics if metrics is not None else MetricsRegistry()
        self._attempts = registry.counter(f"{scope}.retry.attempts")
        self._failures = registry.counter(f"{scope}.retry.failures")
        self._recoveries = registry.counter(f"{scope}.retry.recoveries")
        self._give_ups = registry.counter(f"{scope}.retry.give_ups")

    def call(self, fn, *args, retry_on=RETRYABLE, **kwargs):
        """Run ``fn(*args, **kwargs)``, retrying ``retry_on`` exceptions.

        Re-raises the last exception once attempts or the time budget are
        exhausted (after incrementing ``give_ups``).
        """
        policy = self.policy
        deadline = None
        if policy.timeout is not None and self.clock is not None:
            deadline = self.clock.now() + policy.timeout
        failures = 0
        while True:
            self._attempts.increment()
            try:
                result = fn(*args, **kwargs)
            except retry_on:
                failures += 1
                self._failures.increment()
                if failures >= policy.max_attempts:
                    self._give_ups.increment()
                    raise
                delay = policy.backoff_delay(failures, self.rng)
                if (deadline is not None
                        and self.clock.now() + delay > deadline):
                    self._give_ups.increment()
                    raise
                self._wait(delay)
            else:
                if failures:
                    self._recoveries.increment()
                return result

    def _wait(self, delay: float) -> None:
        if delay <= 0.0:
            return
        advance = getattr(self.clock, "advance", None)
        if advance is not None:
            advance(delay)
