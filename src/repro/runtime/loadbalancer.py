"""Dynamic load balancing of stream jobs across machines.

The paper's future work (Section 7): "we want to improve the dynamic
load balancing for our stream processing jobs; the load balancer should
coordinate hundreds of jobs on a single machine and minimize the
recovery time for lagging jobs."

The balancer places weighted jobs onto cluster machines, keeps placements
when possible (moves are not free: a moved job re-reads its input from
its checkpoint), and supports the two operations the paper motivates:

- :meth:`rebalance` — move jobs off overloaded machines, most-lagging
  jobs first, so the jobs that most need spare capacity get it;
- :meth:`handle_machine_failure` — re-place a dead machine's jobs onto
  the least-loaded survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError, SimulationError
from repro.runtime.cluster import Cluster


@dataclass
class JobSpec:
    """One placeable job: its steady-state load and current lag."""

    name: str
    load: float = 1.0
    lag: int = 0

    def __post_init__(self) -> None:
        if self.load <= 0:
            raise ConfigError(f"job {self.name!r} needs positive load")


@dataclass(frozen=True)
class Move:
    """A job relocation decided by the balancer."""

    job: str
    source: str | None
    target: str


@dataclass
class LoadBalancer:
    """Greedy least-loaded placement with lag-aware rebalancing."""

    cluster: Cluster
    #: a machine is overloaded when above mean load by this factor
    overload_factor: float = 1.25
    _jobs: dict[str, JobSpec] = field(default_factory=dict)
    _placement: dict[str, str] = field(default_factory=dict)
    moves: list[Move] = field(default_factory=list)

    # -- placement ---------------------------------------------------------

    def _live_machines(self) -> list[str]:
        return [name for name, machine in self.cluster.machines.items()
                if machine.alive]

    def machine_load(self, machine: str) -> float:
        return sum(self._jobs[job].load
                   for job, placed_on in self._placement.items()
                   if placed_on == machine)

    def loads(self) -> dict[str, float]:
        return {name: self.machine_load(name)
                for name in self._live_machines()}

    def _least_loaded(self) -> str:
        live = self._live_machines()
        if not live:
            raise SimulationError("no live machines to place jobs on")
        return min(live, key=lambda name: (self.machine_load(name), name))

    def place(self, job: JobSpec) -> str:
        """Place a new job on the least-loaded live machine."""
        if job.name in self._jobs:
            raise ConfigError(f"job {job.name!r} is already placed")
        target = self._least_loaded()
        self._jobs[job.name] = job
        self._placement[job.name] = target
        self.moves.append(Move(job.name, None, target))
        return target

    def placement_of(self, job_name: str) -> str:
        if job_name not in self._placement:
            raise ConfigError(f"job {job_name!r} is not placed")
        return self._placement[job_name]

    def remove(self, job_name: str) -> None:
        self._jobs.pop(job_name, None)
        self._placement.pop(job_name, None)

    def update_lag(self, job_name: str, lag: int) -> None:
        if job_name not in self._jobs:
            raise ConfigError(f"job {job_name!r} is not placed")
        self._jobs[job_name].lag = lag

    # -- rebalancing -------------------------------------------------------------

    def imbalance(self) -> float:
        """max/mean machine load (1.0 is perfectly balanced)."""
        loads = list(self.loads().values())
        if not loads or sum(loads) == 0:
            return 1.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 1.0

    def rebalance(self, max_moves: int = 10) -> list[Move]:
        """Move jobs from overloaded machines to underloaded ones.

        Candidates come off the most loaded machine, *most-lagging job
        first* — the paper's "minimize the recovery time for lagging
        jobs": a lagging job moved to a quiet machine catches up fastest.
        Stops when no machine exceeds ``overload_factor`` times the mean
        or the move budget runs out.
        """
        performed: list[Move] = []
        for _ in range(max_moves):
            loads = self.loads()
            if not loads:
                break
            mean = sum(loads.values()) / len(loads)
            hottest = max(loads, key=lambda name: (loads[name], name))
            if mean == 0 or loads[hottest] <= self.overload_factor * mean:
                break
            candidates = sorted(
                (job for job, placed in self._placement.items()
                 if placed == hottest),
                key=lambda job: (-self._jobs[job].lag,
                                 self._jobs[job].load),
            )
            moved = False
            for job in candidates:
                target = self._least_loaded()
                if target == hottest:
                    break
                new_target_load = loads[target] + self._jobs[job].load
                if new_target_load >= loads[hottest]:
                    continue  # the move would just shift the hotspot
                self._placement[job] = target
                move = Move(job, hottest, target)
                performed.append(move)
                self.moves.append(move)
                moved = True
                break
            if not moved:
                break
        return performed

    def handle_machine_failure(self, machine: str) -> list[Move]:
        """Re-place a dead machine's jobs, most-lagging first."""
        orphans = sorted(
            (job for job, placed in self._placement.items()
             if placed == machine),
            key=lambda job: -self._jobs[job].lag,
        )
        performed = []
        for job in orphans:
            target = self._least_loaded()
            self._placement[job] = target
            move = Move(job, machine, target)
            performed.append(move)
            self.moves.append(move)
        return performed
