"""Seeded random-number streams.

Every stochastic component (workload generators, failure plans, sharding
salt) draws from its own named stream derived from a single experiment
seed. Components therefore stay reproducible *and* independent: adding a
new consumer of randomness does not perturb the draws seen by existing
ones.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["make_rng"]


def make_rng(seed: int, stream: str = "") -> random.Random:
    """Return a ``random.Random`` for the (seed, stream) pair.

    The stream name is hashed into the seed so that, e.g.,
    ``make_rng(7, "events")`` and ``make_rng(7, "failures")`` are
    uncorrelated, while either called twice yields identical sequences.
    """
    digest = hashlib.sha256(f"{seed}:{stream}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))
