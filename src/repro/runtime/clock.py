"""Clock abstractions: simulated and wall-clock time.

All components in the library take a :class:`Clock` rather than calling
``time.time()`` directly. Experiments run on :class:`SimClock` so that
checkpoint intervals, failures, and latency measurements are deterministic;
the benchmarks that measure raw Python throughput use :class:`WallClock`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from repro.errors import SimulationError


class Clock(ABC):
    """Read-only time source; subclasses define how time advances."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""


class WallClock(Clock):
    """Real time, from ``time.monotonic`` (stable under system clock jumps)."""

    def now(self) -> float:
        return time.monotonic()


class SimClock(Clock):
    """Virtual time advanced explicitly by the simulation scheduler.

    Time never moves backwards; :meth:`advance_to` enforces monotonicity so a
    mis-ordered event queue fails loudly instead of silently reordering
    history.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise SimulationError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to an absolute ``timestamp``."""
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)
        return self._now
