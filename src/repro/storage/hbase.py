"""HBase stand-in: the ordered table store Puma checkpoints into.

Puma "aggregation apps store state in a shared HBase cluster" and
guarantee "at-least-once state and output semantics with checkpoints to
HBase" (Sections 2.2 and 4.3.2). What that requires of the store:

- row puts/gets addressed by (row key, column),
- atomic per-row batch puts (a Puma checkpoint writes the aggregation
  row and the stream offset together),
- ordered scans over a row-key range (serving windowed query results),
- no multi-row transactions — which is exactly why Puma cannot offer
  exactly-once semantics (Section 4.3.2).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator

from repro.errors import StorageError


class HBaseTable:
    """A sorted table of rows, each a column -> value mapping."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._rows: dict[str, dict[str, Any]] = {}
        self._sorted_keys: list[str] = []
        self._sorted_dirty = False

    # -- writes --------------------------------------------------------------

    def put(self, row_key: str, columns: dict[str, Any]) -> None:
        """Merge ``columns`` into the row (atomic within the row)."""
        if not columns:
            raise StorageError("put requires at least one column")
        row = self._rows.get(row_key)
        if row is None:
            self._rows[row_key] = dict(columns)
            self._sorted_dirty = True
        else:
            row.update(columns)

    def increment(self, row_key: str, column: str, amount: float = 1) -> float:
        """Atomic counter increment; returns the new value."""
        if row_key not in self._rows:
            self._sorted_dirty = True
        row = self._rows.setdefault(row_key, {})
        row[column] = row.get(column, 0) + amount
        return row[column]

    def check_and_put(self, row_key: str, column: str, expected: Any,
                      columns: dict[str, Any]) -> bool:
        """Atomic compare-and-set on one column; True if applied."""
        row = self._rows.get(row_key, {})
        if row.get(column) != expected:
            return False
        self.put(row_key, columns)
        return True

    def delete_row(self, row_key: str) -> None:
        if self._rows.pop(row_key, None) is not None:
            self._sorted_dirty = True

    # -- reads ---------------------------------------------------------------

    def get(self, row_key: str) -> dict[str, Any] | None:
        row = self._rows.get(row_key)
        return dict(row) if row is not None else None

    def get_column(self, row_key: str, column: str, default: Any = None) -> Any:
        row = self._rows.get(row_key)
        if row is None:
            return default
        return row.get(column, default)

    def scan(self, start_row: str | None = None,
             end_row: str | None = None,
             limit: int | None = None) -> Iterator[tuple[str, dict[str, Any]]]:
        """Yield (row_key, columns) over ``[start_row, end_row)`` in order."""
        keys = self._sorted()
        lo = 0 if start_row is None else bisect_left(keys, start_row)
        hi = len(keys) if end_row is None else bisect_left(keys, end_row)
        count = 0
        for index in range(lo, hi):
            if limit is not None and count >= limit:
                return
            key = keys[index]
            yield key, dict(self._rows[key])
            count += 1

    def row_count(self) -> int:
        return len(self._rows)

    def _sorted(self) -> list[str]:
        if self._sorted_dirty or len(self._sorted_keys) != len(self._rows):
            self._sorted_keys = sorted(self._rows)
            self._sorted_dirty = False
        return self._sorted_keys
