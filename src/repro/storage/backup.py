"""Backup engine: asynchronous snapshots of a local LSM store to HDFS.

Models RocksDB's backup engine as used in the paper's Figure 10: the
local database is "copied asynchronously to HDFS at a larger interval".
Backups are full snapshots of the flushed runs plus the WAL tail, so a
restore reproduces the store exactly as of the snapshot. HDFS outages
are first retried under a :class:`~repro.runtime.retry.RetryPolicy`;
when the retry budget is exhausted the backup is *skipped-and-counted*
(``backup.snapshot.skipped``) — recovery then falls back to an older
snapshot, losing the delta (which the at-least-once replay from Scribe
re-creates).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any

from repro.errors import BackupNotFound, StoreUnavailable
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.retry import Retrier, RetryPolicy
from repro.storage.hdfs import HdfsBlobStore
from repro.storage.lsm import LsmStore


@dataclass(frozen=True)
class BackupInfo:
    """Metadata for one stored snapshot."""

    backup_id: int
    store_name: str
    taken_at: float
    key_count: int


class BackupEngine:
    """Snapshot/restore bridge between an :class:`LsmStore` and HDFS."""

    def __init__(self, hdfs: HdfsBlobStore, prefix: str = "backups",
                 retry: RetryPolicy | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.hdfs = hdfs
        self.prefix = prefix
        self._next_id: dict[str, int] = {}
        self._history: dict[str, list[BackupInfo]] = {}
        registry = metrics if metrics is not None else MetricsRegistry()
        policy = retry if retry is not None else RetryPolicy.no_retries()
        self._retrier = Retrier(policy, clock=hdfs.clock,
                                metrics=registry, scope="backup")
        self._skipped = registry.counter("backup.snapshot.skipped")

    def _blob_name(self, store_name: str, backup_id: int) -> str:
        return f"{self.prefix}/{store_name}/{backup_id:08d}"

    # -- snapshot -----------------------------------------------------------------

    def create_backup(self, store: LsmStore) -> BackupInfo | None:
        """Snapshot ``store`` to HDFS; returns None if HDFS stays unavailable.

        The store is flushed first so the snapshot is a consistent set of
        immutable runs (plus an empty WAL), matching RocksDB behaviour.
        An outage is retried under the engine's policy; a final failure
        is counted in ``backup.snapshot.skipped`` and the engine moves
        on — the paper's "continue without remote backup copies" mode.
        """
        store.flush()
        state = store._disk_state()
        blob = {
            "sstables": copy.deepcopy(state["sstables"]),
            "wal": copy.deepcopy(state["wal"]),
            "flushed_seq": state["flushed_seq"],
        }
        backup_id = self._next_id.get(store.name, 0)
        try:
            self._retrier.call(
                self.hdfs.put, self._blob_name(store.name, backup_id), blob
            )
        except StoreUnavailable:
            self._skipped.increment()
            return None  # paper: continue without a remote copy
        self._next_id[store.name] = backup_id + 1
        info = BackupInfo(backup_id, store.name, self.hdfs.clock.now(),
                          store.approximate_key_count())
        self._history.setdefault(store.name, []).append(info)
        return info

    # -- restore ------------------------------------------------------------------

    def latest_backup(self, store_name: str) -> BackupInfo | None:
        history = self._history.get(store_name, [])
        for info in reversed(history):
            if self.hdfs.exists(self._blob_name(store_name, info.backup_id)):
                return info
        return None

    def restore(self, store_name: str, disk: dict[str, Any],
                backup_id: int | None = None,
                merge_operator: Any = None) -> LsmStore:
        """Materialize a store from a snapshot into a (new) disk namespace.

        Raises :class:`~repro.errors.BackupNotFound` when the snapshot
        does not exist (whether ``backup_id`` was explicit or inferred),
        and :class:`~repro.errors.StoreUnavailable` when HDFS stays down
        past the retry budget — the blob is fetched *before* the new
        store is created, so a failed restore never leaves a
        half-initialized store behind.
        """
        if backup_id is None:
            info = self.latest_backup(store_name)
            if info is None:
                raise BackupNotFound(f"no backups for store {store_name!r}")
            backup_id = info.backup_id
        blob_name = self._blob_name(store_name, backup_id)
        try:
            blob = self._retrier.call(self.hdfs.get, blob_name)
        except KeyError:
            raise BackupNotFound(
                f"no backup {backup_id} for store {store_name!r}"
            ) from None
        store = LsmStore(disk=disk, name=store_name,
                         merge_operator=merge_operator)
        state = store._disk_state()
        state["sstables"] = copy.deepcopy(blob["sstables"])
        state["wal"] = copy.deepcopy(blob["wal"])
        state["flushed_seq"] = blob["flushed_seq"]
        store.recover()
        return store

    def backups(self, store_name: str) -> list[BackupInfo]:
        return list(self._history.get(store_name, []))
