"""Write-ahead log for the embedded LSM store.

Every mutation is appended to the WAL before it touches the memtable, so
a process crash loses nothing that was acknowledged. On restart the LSM
replays the WAL records that postdate the last flushed memtable.

The log lives in a machine's ``disk`` namespace (see
:mod:`repro.runtime.cluster`): it survives process crashes and is lost
with the machine — exactly the recovery ladder of the paper's Figure 10.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator


class WalOp(enum.Enum):
    """Kinds of logged mutation."""

    PUT = "put"
    DELETE = "delete"
    MERGE = "merge"


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation, stamped with a global sequence number."""

    sequence: int
    op: WalOp
    key: str
    value: Any = None


class WriteAheadLog:
    """Append-only mutation log with truncation at flush points."""

    def __init__(self) -> None:
        self._records: list[WalRecord] = []
        self._next_sequence = 0

    def append(self, op: WalOp, key: str, value: Any = None) -> WalRecord:
        record = WalRecord(self._next_sequence, op, key, value)
        self._records.append(record)
        self._next_sequence += 1
        return record

    def records_since(self, sequence: int) -> Iterator[WalRecord]:
        """Yield records with sequence number >= ``sequence``."""
        for record in self._records:
            if record.sequence >= sequence:
                yield record

    def truncate_before(self, sequence: int) -> int:
        """Drop records below ``sequence`` (they are in a flushed run)."""
        keep_from = 0
        while (keep_from < len(self._records)
               and self._records[keep_from].sequence < sequence):
            keep_from += 1
        dropped = keep_from
        del self._records[:keep_from]
        return dropped

    @property
    def next_sequence(self) -> int:
        return self._next_sequence

    def __len__(self) -> int:
        return len(self._records)
