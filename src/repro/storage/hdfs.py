"""HDFS stand-in: a remote blob store with injectable unavailability.

The paper (Section 4.4.2): "HDFS is designed for batch workloads and is
not intended to be an always-available system. If HDFS is not available
for writes, processing continues without remote backup copies. If there
is a failure, then recovery uses an older snapshot." This store models
exactly that: writes raise :class:`~repro.errors.StoreUnavailable` during
outage windows, and the backup engine tolerates it.
"""

from __future__ import annotations

from typing import Any

from repro.errors import BackupNotFound, StoreUnavailable
from repro.runtime.clock import Clock, WallClock


class HdfsBlobStore:
    """Named-blob storage with scheduled outage windows."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else WallClock()
        self._blobs: dict[str, Any] = {}
        self._outages: list[tuple[float, float]] = []

    # -- availability -----------------------------------------------------------

    def add_outage(self, start: float, end: float) -> None:
        """Mark ``[start, end)`` as an unavailability window."""
        if end <= start:
            raise ValueError("outage end must be after start")
        self._outages.append((start, end))

    def available(self) -> bool:
        now = self.clock.now()
        return not any(start <= now < end for start, end in self._outages)

    def _check_available(self, operation: str) -> None:
        if not self.available():
            raise StoreUnavailable(
                f"HDFS unavailable at t={self.clock.now():.3f} during {operation}"
            )

    # -- blob operations -----------------------------------------------------------

    def put(self, name: str, blob: Any) -> None:
        self._check_available("put")
        self._blobs[name] = blob

    def get(self, name: str) -> Any:
        self._check_available("get")
        if name not in self._blobs:
            raise BackupNotFound(f"no blob named {name!r}")
        return self._blobs[name]

    def exists(self, name: str) -> bool:
        return name in self._blobs

    def delete(self, name: str) -> None:
        self._check_available("delete")
        self._blobs.pop(name, None)

    def list(self, prefix: str = "") -> list[str]:
        return sorted(name for name in self._blobs if name.startswith(prefix))
