"""HDFS stand-in: a remote blob store with injectable unavailability.

The paper (Section 4.4.2): "HDFS is designed for batch workloads and is
not intended to be an always-available system. If HDFS is not available
for writes, processing continues without remote backup copies. If there
is a failure, then recovery uses an older snapshot." This store models
exactly that: writes raise :class:`~repro.errors.StoreUnavailable` during
outage windows, and the backup engine tolerates it.

Unavailability comes from three independently injectable sources, so a
:class:`~repro.runtime.failures.FailurePlan` can script any of them:

- scheduled outage *windows* (:meth:`add_outage`) — transient, heal on
  their own as the clock passes ``end``;
- a *latched* down state (:meth:`set_available`) — holds until healed;
- a *network partition* on the store's link (pass ``network``/``link``).

Every ``StoreUnavailable`` raised is counted in
``{name}.unavailable_errors`` so chaos campaigns can assert that no
injected window was silently swallowed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import StoreUnavailable
from repro.runtime.clock import Clock, WallClock
from repro.runtime.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.runtime.failures import Network


class HdfsBlobStore:
    """Named-blob storage with scheduled and latched outage windows.

    Missing blobs raise plain :class:`KeyError`; callers that store
    backups (:class:`~repro.storage.backup.BackupEngine`, Scribe
    snapshots) map it to :class:`~repro.errors.BackupNotFound` at their
    own layer — the blob store doesn't know what a blob means.
    """

    def __init__(self, clock: Clock | None = None,
                 metrics: MetricsRegistry | None = None,
                 name: str = "hdfs",
                 network: "Network | None" = None,
                 link: tuple[str, str] | None = None) -> None:
        self.clock = clock if clock is not None else WallClock()
        self.name = name
        self._blobs: dict[str, Any] = {}
        self._outages: list[tuple[float, float]] = []
        self._latched_down = False
        self._slow_factor = 1.0
        self._network = network
        self._link = link
        registry = metrics if metrics is not None else MetricsRegistry()
        self._unavailable = registry.counter(f"{name}.unavailable_errors")

    # -- availability -----------------------------------------------------------

    def add_outage(self, start: float, end: float) -> None:
        """Mark ``[start, end)`` as an unavailability window."""
        if end <= start:
            raise ValueError("outage end must be after start")
        self._outages.append((start, end))

    def set_available(self, available: bool) -> None:
        """Latch the store down (or heal it), independent of windows."""
        self._latched_down = not available

    def set_slow_factor(self, factor: float) -> None:
        """Scale modeled operation latency (1.0 = healthy)."""
        if factor < 1.0:
            raise ValueError("slow factor must be >= 1")
        self._slow_factor = factor

    @property
    def slow_factor(self) -> float:
        return self._slow_factor

    def available(self) -> bool:
        if self._latched_down:
            return False
        if (self._network is not None and self._link is not None
                and not self._network.connected(*self._link)):
            return False
        now = self.clock.now()
        return not any(start <= now < end for start, end in self._outages)

    def _check_available(self, operation: str) -> None:
        if not self.available():
            self._unavailable.increment()
            raise StoreUnavailable(
                f"HDFS unavailable at t={self.clock.now():.3f} during {operation}"
            )

    # -- blob operations -----------------------------------------------------------

    def put(self, name: str, blob: Any) -> None:
        self._check_available("put")
        self._blobs[name] = blob

    def get(self, name: str) -> Any:
        self._check_available("get")
        if name not in self._blobs:
            raise KeyError(name)
        return self._blobs[name]

    def exists(self, name: str) -> bool:
        return name in self._blobs

    def delete(self, name: str) -> None:
        self._check_available("delete")
        self._blobs.pop(name, None)

    def list(self, prefix: str = "") -> list[str]:
        return sorted(name for name in self._blobs if name.startswith(prefix))
