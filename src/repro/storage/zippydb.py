"""ZippyDB stand-in: a sharded, replicated key-value service.

The paper describes ZippyDB as "Facebook's distributed key-value store
with Paxos-style replication, built on top of RocksDB". The behaviours
the evaluation depends on are reproduced:

- **sharding**: keys hash onto ``num_shards`` shards; state that does not
  fit one machine spreads out (Section 4.4.2, remote database model);
- **replication with quorum**: each shard has ``replication_factor``
  replicas; writes require a majority alive, reads are served by any live
  replica (we apply writes to every live replica, so replicas never
  diverge — a simplification of Paxos that preserves its client-visible
  contract);
- **custom merge operators**: the append-only optimization of Figure 12 —
  clients write operand deltas, the store folds them server-side;
- **multi-key transactions**: the high-latency distributed commit that
  exactly-once state semantics require (Section 4.3.2);
- **latency accounting**: every operation charges a simulated cost to a
  :class:`~repro.runtime.clock.SimClock`, so benchmarks measure the
  throughput effect of eliminating reads without wall-clock noise.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigError, StoreUnavailable, TransactionAborted
from repro.runtime.clock import SimClock
from repro.runtime.metrics import MetricsRegistry
from repro.storage.merge import MergeOperator

if TYPE_CHECKING:
    from repro.runtime.failures import Network


@dataclass(frozen=True)
class ZippyDbLatencyModel:
    """Simulated cost, in seconds, of client-visible operations.

    Defaults are loosely calibrated to a same-region deployment: ~1 ms
    round trips, with distributed transactions paying two rounds
    (prepare + commit) per participating shard group.
    """

    read: float = 0.001
    write: float = 0.001
    batch_overhead: float = 0.0005   # per round trip, amortized over a batch
    per_item: float = 0.00002        # marginal server cost per batched item
    transaction_round: float = 0.002  # one 2PC phase across the shard group


class _Shard:
    """One shard: a set of replica dicts kept write-synchronized."""

    def __init__(self, index: int, replication_factor: int) -> None:
        self.index = index
        self.replicas: list[dict[str, Any]] = [
            {} for _ in range(replication_factor)
        ]
        self.alive: list[bool] = [True] * replication_factor

    @property
    def quorum(self) -> int:
        return len(self.replicas) // 2 + 1

    def live_count(self) -> int:
        return sum(self.alive)

    def check_writable(self) -> None:
        if self.live_count() < self.quorum:
            raise StoreUnavailable(
                f"shard {self.index}: {self.live_count()} of "
                f"{len(self.replicas)} replicas alive; quorum is {self.quorum}"
            )

    def live_replica(self) -> dict[str, Any]:
        for replica, alive in zip(self.replicas, self.alive):
            if alive:
                return replica
        raise StoreUnavailable(f"shard {self.index}: no live replicas")

    def apply(self, key: str, value: Any) -> None:
        for replica, alive in zip(self.replicas, self.alive):
            if alive:
                if value is _DELETED:
                    replica.pop(key, None)
                else:
                    replica[key] = value


_DELETED = object()


class ZippyDb:
    """Sharded replicated KV store with merge operators and transactions."""

    def __init__(self, num_shards: int = 3, replication_factor: int = 3,
                 merge_operator: MergeOperator | None = None,
                 clock: SimClock | None = None,
                 latency: ZippyDbLatencyModel | None = None,
                 metrics: MetricsRegistry | None = None,
                 name: str = "zippydb",
                 network: "Network | None" = None,
                 link: tuple[str, str] | None = None) -> None:
        if num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        if replication_factor < 1:
            raise ConfigError("replication_factor must be >= 1")
        self.name = name
        self.merge_operator = merge_operator
        self.clock = clock
        self.latency = latency if latency is not None else ZippyDbLatencyModel()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._shards = [_Shard(i, replication_factor) for i in range(num_shards)]
        self._latched_down = False
        self._slow_factor = 1.0
        self._outages: list[tuple[float, float]] = []
        self._network = network
        self._link = link
        self._unavailable = self.metrics.counter(f"{name}.unavailable_errors")

    # -- plumbing -------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def shard_for(self, key: str) -> int:
        return zlib.crc32(key.encode("utf-8")) % len(self._shards)

    def _charge(self, seconds: float, metric: str, count: int = 1) -> None:
        seconds *= self._slow_factor
        if self.clock is not None:
            self.clock.advance(seconds)
        self.metrics.counter(f"{self.name}.{metric}").increment(count)
        self.metrics.counter(f"{self.name}.simulated_seconds").increment(seconds)

    # -- availability / fault injection -----------------------------------------

    def add_outage(self, start: float, end: float) -> None:
        """Mark ``[start, end)`` as an unavailability window (needs a clock)."""
        if end <= start:
            raise ConfigError("outage end must be after start")
        self._outages.append((start, end))

    def set_available(self, available: bool) -> None:
        """Latch the whole store down (or heal it), independent of replicas."""
        self._latched_down = not available

    def set_slow_factor(self, factor: float) -> None:
        """Scale every operation's modeled latency (1.0 = healthy)."""
        if factor < 1.0:
            raise ConfigError("slow factor must be >= 1")
        self._slow_factor = factor

    @property
    def slow_factor(self) -> float:
        return self._slow_factor

    def available(self) -> bool:
        if self._latched_down:
            return False
        if (self._network is not None and self._link is not None
                and not self._network.connected(*self._link)):
            return False
        if self._outages and self.clock is not None:
            now = self.clock.now()
            if any(start <= now < end for start, end in self._outages):
                return False
        return True

    def _check_available(self, operation: str) -> None:
        if not self.available():
            self._unavailable.increment()
            raise StoreUnavailable(
                f"{self.name} unavailable during {operation}"
            )

    def _writable(self, shard: _Shard) -> None:
        try:
            shard.check_writable()
        except StoreUnavailable:
            self._unavailable.increment()
            raise

    def _live_replica(self, shard: _Shard) -> dict[str, Any]:
        try:
            return shard.live_replica()
        except StoreUnavailable:
            self._unavailable.increment()
            raise

    # -- single-key operations ---------------------------------------------------

    def get(self, key: str) -> Any:
        self._check_available("get")
        self._charge(self.latency.read, "reads")
        shard = self._shards[self.shard_for(key)]
        value = self._live_replica(shard).get(key)
        return self._resolve(value)

    def put(self, key: str, value: Any) -> None:
        self._check_available("put")
        self._charge(self.latency.write, "writes")
        shard = self._shards[self.shard_for(key)]
        self._writable(shard)
        shard.apply(key, _Stored(value, ()))

    def delete(self, key: str) -> None:
        self._check_available("delete")
        self._charge(self.latency.write, "writes")
        shard = self._shards[self.shard_for(key)]
        self._writable(shard)
        shard.apply(key, _DELETED)

    def merge(self, key: str, operand: Any) -> None:
        """Append a merge operand server-side (no read round trip)."""
        if self.merge_operator is None:
            raise ConfigError(f"{self.name!r} has no merge operator")
        self._check_available("merge")
        self._charge(self.latency.write, "merge_writes")
        shard = self._shards[self.shard_for(key)]
        self._writable(shard)
        existing = shard.live_replica().get(key)
        if isinstance(existing, _Stored):
            stored = _Stored(existing.base, existing.operands + (operand,))
        else:
            stored = _Stored(None, (operand,))
        shard.apply(key, stored)

    # -- batched operations (one round trip per shard touched) ---------------------

    def multi_get(self, keys: list[str]) -> dict[str, Any]:
        self._check_available("multi_get")
        by_shard = self._group(keys)
        self._charge(
            self.latency.batch_overhead * len(by_shard)
            + self.latency.per_item * len(keys),
            "batch_reads", count=len(keys),
        )
        result: dict[str, Any] = {}
        for shard_index, shard_keys in by_shard.items():
            replica = self._live_replica(self._shards[shard_index])
            for key in shard_keys:
                result[key] = self._resolve(replica.get(key))
        return result

    def multi_put(self, items: dict[str, Any]) -> None:
        self._check_available("multi_put")
        by_shard = self._group(list(items))
        self._charge(
            self.latency.batch_overhead * len(by_shard)
            + self.latency.per_item * len(items),
            "batch_writes", count=len(items),
        )
        for shard_index, shard_keys in by_shard.items():
            shard = self._shards[shard_index]
            self._writable(shard)
            for key in shard_keys:
                shard.apply(key, _Stored(items[key], ()))

    def multi_merge(self, items: list[tuple[str, Any]]) -> None:
        """Batched append-only merges: the Figure 12 fast path."""
        if self.merge_operator is None:
            raise ConfigError(f"{self.name!r} has no merge operator")
        self._check_available("multi_merge")
        by_shard: dict[int, list[tuple[str, Any]]] = {}
        for key, operand in items:
            by_shard.setdefault(self.shard_for(key), []).append((key, operand))
        self._charge(
            self.latency.batch_overhead * len(by_shard)
            + self.latency.per_item * len(items),
            "batch_merge_writes", count=len(items),
        )
        for shard_index, pairs in by_shard.items():
            shard = self._shards[shard_index]
            self._writable(shard)
            replica = shard.live_replica()
            for key, operand in pairs:
                existing = replica.get(key)
                if isinstance(existing, _Stored):
                    stored = _Stored(existing.base,
                                     existing.operands + (operand,))
                else:
                    stored = _Stored(None, (operand,))
                shard.apply(key, stored)

    # -- transactions -----------------------------------------------------------

    def commit_transaction(self, puts: dict[str, Any] | None = None,
                           deletes: list[str] | None = None) -> None:
        """Atomically apply writes across shards (2PC-priced).

        This is the "high-latency distributed transaction" that
        exactly-once state semantics pay for (Section 4.3.2).
        """
        puts = puts or {}
        deletes = deletes or []
        keys = list(puts) + list(deletes)
        if not keys:
            return
        shards_touched = {self.shard_for(key) for key in keys}
        try:
            self._check_available("transaction")
            # Sorted so the participant checks (and which shard raises
            # first) are deterministic regardless of key hash order (R005).
            for shard_index in sorted(shards_touched):
                self._writable(self._shards[shard_index])
        except StoreUnavailable as exc:
            raise TransactionAborted(str(exc)) from exc
        # prepare + commit rounds across the participant group
        self._charge(
            2 * self.latency.transaction_round
            + self.latency.per_item * len(keys),
            "transactions",
        )
        for key, value in puts.items():
            self._shards[self.shard_for(key)].apply(key, _Stored(value, ()))
        for key in deletes:
            self._shards[self.shard_for(key)].apply(key, _DELETED)

    # -- replica failure injection ---------------------------------------------------

    def kill_replica(self, shard_index: int, replica_index: int) -> None:
        shard = self._shards[shard_index]
        shard.alive[replica_index] = False

    def revive_replica(self, shard_index: int, replica_index: int) -> None:
        """Bring a replica back, catching it up from a live peer."""
        shard = self._shards[shard_index]
        source = shard.live_replica()
        shard.replicas[replica_index] = dict(source)
        shard.alive[replica_index] = True

    # -- helpers ---------------------------------------------------------------------

    def _group(self, keys: list[str]) -> dict[int, list[str]]:
        by_shard: dict[int, list[str]] = {}
        for key in keys:
            by_shard.setdefault(self.shard_for(key), []).append(key)
        return by_shard

    def _resolve(self, value: Any) -> Any:
        if value is None or value is _DELETED:
            return None
        if isinstance(value, _Stored):
            if not value.operands:
                return value.base
            return self.merge_operator.full_merge(value.base, value.operands)
        return value


@dataclass(frozen=True)
class _Stored:
    """Server-side representation: a base value plus pending operands."""

    base: Any
    operands: tuple
