"""Storage substrates.

The paper's state-saving story (Section 4.4) rests on three stores, all
rebuilt here:

- **RocksDB** -> :class:`~repro.storage.lsm.LsmStore`: an embedded
  log-structured merge tree with a write-ahead log, memtable, sorted
  immutable runs, compaction, custom merge operators, and a backup engine.
- **HDFS** -> :class:`~repro.storage.hdfs.HdfsBlobStore`: a remote blob
  store used as the asynchronous backup target; its availability can lapse
  (the paper: "if HDFS is not available for writes, processing continues
  without remote backup copies").
- **ZippyDB** -> :class:`~repro.storage.zippydb.ZippyDb`: a sharded,
  replicated key-value service with custom merge operators (enabling the
  Figure 12 append-only optimization) and multi-key transactions (enabling
  exactly-once semantics).
- **HBase** -> :class:`~repro.storage.hbase.HBaseTable`: the ordered table
  store Puma checkpoints its aggregation state to.
"""

from repro.storage.backup import BackupEngine
from repro.storage.hbase import HBaseTable
from repro.storage.hdfs import HdfsBlobStore
from repro.storage.lsm import LsmStore
from repro.storage.memtable import Memtable
from repro.storage.merge import (
    CounterMergeOperator,
    DictSumMergeOperator,
    ListAppendMergeOperator,
    MaxMergeOperator,
    MergeOperator,
    MinMergeOperator,
)
from repro.storage.sstable import SSTable
from repro.storage.wal import WalRecord, WriteAheadLog
from repro.storage.zippydb import ZippyDb, ZippyDbLatencyModel

__all__ = [
    "BackupEngine",
    "CounterMergeOperator",
    "DictSumMergeOperator",
    "HBaseTable",
    "HdfsBlobStore",
    "ListAppendMergeOperator",
    "LsmStore",
    "MaxMergeOperator",
    "Memtable",
    "MergeOperator",
    "MinMergeOperator",
    "SSTable",
    "WalRecord",
    "WriteAheadLog",
    "ZippyDb",
    "ZippyDbLatencyModel",
]
