"""Bloom filters for SSTable point-read short-circuiting.

RocksDB attaches a bloom filter to every SSTable so that a point read
probes only the runs that might contain the key. Without one, an LSM
point read costs one binary search *per run* — the read amplification
that makes the paper's Figure 12 local-state comparison interesting.
With one, a read of an absent key usually touches no run at all.

The filter is deterministic (crc32/adler32 double hashing, no
``PYTHONHASHSEED`` dependence) so results are stable across processes —
the same property :func:`repro.scribe.store.default_bucketer` needs.
"""

from __future__ import annotations

import math
import zlib

__all__ = ["BloomFilter", "hash_pair"]

#: Large odd multiplier decorrelating the two 32-bit checksums.
_H2_SPREAD = 0x9E3779B1


def hash_pair(key: str) -> tuple[int, int]:
    """The (h1, h2) double-hashing pair for ``key``.

    Computed once per store-level lookup and shared by every run's
    filter, so the per-run probe is pure arithmetic.
    """
    data = key.encode("utf-8")
    h1 = zlib.crc32(data)
    # adler32 is weak on short keys; spread it with an odd multiplier so
    # the step size varies even when adler32 collides, and force it odd
    # so the probe sequence cycles through every bit position.
    h2 = ((zlib.adler32(data) * _H2_SPREAD) | 1) & 0xFFFFFFFF
    return h1, h2


class BloomFilter:
    """An immutable bloom filter over a fixed key set.

    ``bits_per_key=10`` with the matching optimal hash count gives a
    ~1% false-positive rate — the RocksDB default.
    """

    __slots__ = ("_bits", "_num_bits", "_num_hashes")

    def __init__(self, keys: list[str], bits_per_key: int = 10) -> None:
        if bits_per_key < 1:
            raise ValueError("bits_per_key must be >= 1")
        count = max(1, len(keys))
        self._num_bits = max(64, count * bits_per_key)
        self._num_hashes = max(1, min(16, round(bits_per_key * math.log(2))))
        self._bits = bytearray((self._num_bits + 7) // 8)
        for key in keys:
            self._add(*hash_pair(key))

    def _add(self, h1: int, h2: int) -> None:
        bits = self._bits
        num_bits = self._num_bits
        for i in range(self._num_hashes):
            index = (h1 + i * h2) % num_bits
            bits[index >> 3] |= 1 << (index & 7)

    def may_contain(self, key: str) -> bool:
        """False means definitely absent; True means probably present."""
        return self.may_contain_hashed(*hash_pair(key))

    def may_contain_hashed(self, h1: int, h2: int) -> bool:
        """Probe with a precomputed :func:`hash_pair` (the hot path)."""
        bits = self._bits
        num_bits = self._num_bits
        for i in range(self._num_hashes):
            index = (h1 + i * h2) % num_bits
            if not bits[index >> 3] & (1 << (index & 7)):
                return False
        return True

    @property
    def num_bits(self) -> int:
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    def approximate_size_bytes(self) -> int:
        return len(self._bits)
