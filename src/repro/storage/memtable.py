"""In-memory write buffer for the LSM store.

The memtable absorbs puts, deletes (as tombstones), and merge operands.
A lookup can resolve entirely here (a put or delete wins outright) or
only partially (a chain of merge operands needs the value from older
runs underneath) — :class:`Entry` encodes both cases.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass, field
from typing import Any, Iterator


class EntryKind(enum.Enum):
    """How an entry combines with older data for the same key."""

    PUT = "put"          # full value: shadows everything older
    TOMBSTONE = "delete"  # deletion: shadows everything older
    MERGE = "merge"       # operand chain: folds into the older value


@dataclass
class Entry:
    """The newest state for a key within one memtable or run."""

    kind: EntryKind
    value: Any = None
    operands: list[Any] = field(default_factory=list)

    @classmethod
    def put(cls, value: Any) -> "Entry":
        return cls(EntryKind.PUT, value=value)

    @classmethod
    def tombstone(cls) -> "Entry":
        return cls(EntryKind.TOMBSTONE)

    @classmethod
    def merge(cls, operand: Any) -> "Entry":
        return cls(EntryKind.MERGE, operands=[operand])

    def is_terminal(self) -> bool:
        """True if this entry fully determines the key's value."""
        return self.kind != EntryKind.MERGE


class Memtable:
    """Mutable key -> :class:`Entry` buffer with approximate sizing."""

    def __init__(self) -> None:
        self._entries: dict[str, Entry] = {}
        self._approximate_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def approximate_bytes(self) -> int:
        return self._approximate_bytes

    def put(self, key: str, value: Any) -> None:
        self._entries[key] = Entry.put(value)
        self._account(key, value)

    def delete(self, key: str) -> None:
        self._entries[key] = Entry.tombstone()
        self._account(key, None)

    def merge(self, key: str, operand: Any) -> None:
        existing = self._entries.get(key)
        if existing is None:
            self._entries[key] = Entry.merge(operand)
        elif existing.kind == EntryKind.MERGE:
            existing.operands.append(operand)
        elif existing.kind == EntryKind.TOMBSTONE:
            # A merge over a deletion starts from the operator's identity;
            # record that by replacing the tombstone with a bare chain
            # tagged as terminal via a PUT of None? No: keep the tombstone
            # semantics explicit — a merge after delete begins a fresh
            # chain whose base is identity, which is what a PUT-less chain
            # over a tombstone resolves to. We model it by converting to a
            # chain and remembering it must not fall through.
            self._entries[key] = Entry(EntryKind.PUT, value=None,
                                       operands=[operand])
        else:  # PUT (possibly with a trailing operand list)
            existing.operands.append(operand)
        self._account(key, operand)

    def get(self, key: str) -> Entry | None:
        return self._entries.get(key)

    def items(self) -> Iterator[tuple[str, Entry]]:
        """Entries in sorted key order (for flushing to a sorted run)."""
        for key in sorted(self._entries):
            yield key, self._entries[key]

    def keys(self) -> list[str]:
        return sorted(self._entries)

    def _account(self, key: str, value: Any) -> None:
        self._approximate_bytes += len(key) + _sizeof(value)


def _sizeof(value: Any) -> int:
    """Cheap size estimate; exactness doesn't matter, monotonicity does."""
    if value is None:
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (list, tuple, set)):
        return 16 + 8 * len(value)
    if isinstance(value, dict):
        return 16 + 16 * len(value)
    return max(8, sys.getsizeof(value) // 4)
