"""Custom merge operators (the RocksDB / ZippyDB feature of Section 4.4.2).

A merge operator turns a read-modify-write into an append: the client
writes *operands* (deltas) and the store folds them into the full value
lazily, either on read or during compaction. The paper's Figure 12 shows
25–200% higher throughput from this optimization.

Every operator here is associative — the defining requirement, since the
store may fold operands in any grouping — and most are full monoids
(associative with an identity), which is what the Stylus monoid processor
API (Section 4.4.2) relies on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable


class MergeOperator(ABC):
    """Folds a base value with a sequence of operands into a new value."""

    @abstractmethod
    def identity(self) -> Any:
        """The empty state that operands are applied to on a miss."""

    @abstractmethod
    def merge(self, left: Any, right: Any) -> Any:
        """Associative combination of two values/operands."""

    def full_merge(self, base: Any, operands: Iterable[Any]) -> Any:
        """Fold ``operands`` into ``base`` (``identity()`` if base is None)."""
        value = self.identity() if base is None else base
        for operand in operands:
            value = self.merge(value, operand)
        return value

    def partial_merge(self, operands: Iterable[Any]) -> Any:
        """Collapse a run of operands without the base (used by compaction)."""
        return self.full_merge(None, operands)


class CounterMergeOperator(MergeOperator):
    """Numeric addition: the canonical counter merge."""

    def identity(self) -> float:
        return 0

    def merge(self, left: float, right: float) -> float:
        return left + right


class MaxMergeOperator(MergeOperator):
    """Keep the maximum (identity is -infinity)."""

    def identity(self) -> float:
        return float("-inf")

    def merge(self, left: float, right: float) -> float:
        return left if left >= right else right


class MinMergeOperator(MergeOperator):
    """Keep the minimum (identity is +infinity)."""

    def identity(self) -> float:
        return float("inf")

    def merge(self, left: float, right: float) -> float:
        return left if left <= right else right


class ListAppendMergeOperator(MergeOperator):
    """Concatenate lists (identity is the empty list)."""

    def identity(self) -> list:
        return []

    def merge(self, left: list, right: list) -> list:
        return list(left) + list(right)


class DictSumMergeOperator(MergeOperator):
    """Pointwise-sum dictionaries of numbers.

    This is the operator behind "one input event changes many different
    values in the application state" (Figure 12's workload): an event's
    per-dimension deltas are a small dict merged into the stored dict.
    """

    def identity(self) -> dict:
        return {}

    def merge(self, left: dict, right: dict) -> dict:
        result = dict(left)
        for key, value in right.items():
            result[key] = result.get(key, 0) + value
        return result


class SetUnionMergeOperator(MergeOperator):
    """Union sets (identity is the empty set)."""

    def identity(self) -> set:
        return set()

    def merge(self, left: set, right: set) -> set:
        return set(left) | set(right)
