"""LsmStore: the embedded key-value engine standing in for RocksDB.

Architecture (a faithful miniature of RocksDB's write path):

- mutations append to a :class:`~repro.storage.wal.WriteAheadLog`, then
  apply to the :class:`~repro.storage.memtable.Memtable`;
- when the memtable exceeds ``memtable_flush_bytes`` it flushes to an
  immutable :class:`~repro.storage.sstable.SSTable` at level 0;
- when the run count exceeds ``compaction_trigger``, one *bounded*
  :meth:`compact_step` merges a contiguous same-level group of at most
  ``max_compact_runs`` runs into a run one level up, folding
  merge-operand chains (monoid operand collapsing) and — when the group
  includes the oldest run — dropping dead tombstones. Repeated steps
  tier the store (size-tiered leveling) without the stop-the-world full
  merge the seed paid; :meth:`compact` remains as the "merge everything"
  path, itself built from bounded steps;
- reads consult memtable then runs newest-to-oldest, resolving merge
  chains with the configured :class:`~repro.storage.merge.MergeOperator`.

Read path: every run carries a bloom filter and key range, so a point
read probes only the runs that might hold the key — a read of an absent
key usually touches none (see :class:`LsmStats`, which counts probes and
skips). A bounded LRU row cache short-circuits repeated point reads of
hot keys; it is invalidated per key on writes and bypassed by scans so
range queries cannot evict the hot set.

Durability model: the WAL and SSTables live in a *disk namespace* — by
default a private dict, but a Stylus processor passes its machine's
``disk`` dict so that a **process crash** (in-memory memtable lost)
recovers from local disk via :meth:`recover`, while a **machine failure**
(disk wiped) must restore from an HDFS backup — the exact recovery ladder
of the paper's Figure 10.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import StoreClosed
from repro.storage.bloom import hash_pair
from repro.storage.memtable import Entry, EntryKind, Memtable
from repro.storage.merge import MergeOperator
from repro.storage.sstable import SSTable
from repro.storage.wal import WalOp, WriteAheadLog

_DISK_KEY = "lsm"

#: Row-cache sentinel distinguishing "cached absence" from "not cached".
_ABSENT = object()


@dataclass
class LsmStats:
    """Read-path counters (per store instance, reset with the process).

    ``sstable_probes`` counts binary searches actually performed inside
    runs; ``bloom_skips``/``range_skips`` count runs rejected without a
    search. The seed implementation probed every run on every read, so
    ``gets * num_sstables`` is the naive-scan baseline the perf harness
    compares against.
    """

    gets: int = 0
    sstable_probes: int = 0
    bloom_skips: int = 0
    range_skips: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    flushes: int = 0
    compactions: int = 0
    multi_gets: int = 0
    multi_get_keys: int = 0
    multi_get_run_walks: int = 0
    compact_steps: int = 0
    compacted_entries: int = 0
    max_step_entries: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "gets": self.gets,
            "sstable_probes": self.sstable_probes,
            "bloom_skips": self.bloom_skips,
            "range_skips": self.range_skips,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "flushes": self.flushes,
            "compactions": self.compactions,
            "multi_gets": self.multi_gets,
            "multi_get_keys": self.multi_get_keys,
            "multi_get_run_walks": self.multi_get_run_walks,
            "compact_steps": self.compact_steps,
            "compacted_entries": self.compacted_entries,
            "max_step_entries": self.max_step_entries,
        }


class _RowCache:
    """Bounded LRU of resolved point-read results (absence included)."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[str, Any] = OrderedDict()

    def lookup(self, key: str) -> Any:
        """The cached value, ``_ABSENT`` for a cached miss, or None."""
        entries = self._entries
        value = entries.get(key)
        if value is None and key not in entries:
            return None
        entries.move_to_end(key)
        return value

    def store(self, key: str, value: Any) -> None:
        entries = self._entries
        entries[key] = value
        entries.move_to_end(key)
        if len(entries) > self.capacity:
            entries.popitem(last=False)

    def invalidate(self, key: str) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class LsmStore:
    """Embedded LSM-tree key-value store with merge-operator support."""

    def __init__(self, disk: dict[str, Any] | None = None,
                 name: str = "lsm",
                 merge_operator: MergeOperator | None = None,
                 memtable_flush_bytes: int = 64 * 1024,
                 compaction_trigger: int = 4,
                 max_compact_runs: int = 4,
                 row_cache_size: int = 1024) -> None:
        if max_compact_runs < 2:
            raise ValueError("max_compact_runs must be >= 2")
        self.name = name
        self.merge_operator = merge_operator
        self.memtable_flush_bytes = memtable_flush_bytes
        self.compaction_trigger = compaction_trigger
        #: Upper bound on runs merged by one compaction step — the knob
        #: that bounds a single call's pause. ``compaction_trigger``
        #: doubles as the per-level fanout (size-tiered leveling).
        self.max_compact_runs = max_compact_runs
        self._disk = disk if disk is not None else {}
        self._memtable = Memtable()
        self._closed = False
        self.stats = LsmStats()
        self._row_cache = _RowCache(row_cache_size) if row_cache_size > 0 else None
        self._disk_state()  # initialize the namespace eagerly

    # -- disk namespace -------------------------------------------------------

    def _disk_state(self) -> dict[str, Any]:
        """The persistent structures, keyed under this store's name."""
        key = f"{_DISK_KEY}:{self.name}"
        if key not in self._disk:
            self._disk[key] = {
                "wal": WriteAheadLog(),
                "sstables": [],       # list[SSTable], oldest first
                "flushed_seq": 0,      # WAL records below this are flushed
            }
        return self._disk[key]

    @property
    def _wal(self) -> WriteAheadLog:
        return self._disk_state()["wal"]

    @property
    def _sstables(self) -> list[SSTable]:
        return self._disk_state()["sstables"]

    # -- mutations -------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (``None`` values are reserved)."""
        self._check_open()
        if value is None:
            raise ValueError("None values are reserved; use delete()")
        self._wal.append(WalOp.PUT, key, value)
        self._memtable.put(key, value)
        if self._row_cache is not None:
            self._row_cache.invalidate(key)
        self._maybe_flush()

    def delete(self, key: str) -> None:
        self._check_open()
        self._wal.append(WalOp.DELETE, key)
        self._memtable.delete(key)
        if self._row_cache is not None:
            self._row_cache.invalidate(key)
        self._maybe_flush()

    def merge(self, key: str, operand: Any) -> None:
        """Append a merge operand (requires a merge operator)."""
        self._check_open()
        if self.merge_operator is None:
            raise ValueError(f"store {self.name!r} has no merge operator")
        self._wal.append(WalOp.MERGE, key, operand)
        self._memtable.merge(key, operand)
        if self._row_cache is not None:
            self._row_cache.invalidate(key)
        self._maybe_flush()

    def write_batch(self, puts: dict[str, Any] | None = None,
                    deletes: list[str] | None = None,
                    merges: list[tuple[str, Any]] | None = None) -> None:
        """Apply a group of mutations.

        Atomic at our failure granularity: simulated crashes happen between
        public calls, never inside one, so a batch is all-or-nothing.
        """
        self._check_open()
        cache = self._row_cache
        for key, value in (puts or {}).items():
            if value is None:
                raise ValueError("None values are reserved; use deletes")
            self._wal.append(WalOp.PUT, key, value)
            self._memtable.put(key, value)
            if cache is not None:
                cache.invalidate(key)
        for key in deletes or []:
            self._wal.append(WalOp.DELETE, key)
            self._memtable.delete(key)
            if cache is not None:
                cache.invalidate(key)
        for key, operand in merges or []:
            if self.merge_operator is None:
                raise ValueError(f"store {self.name!r} has no merge operator")
            self._wal.append(WalOp.MERGE, key, operand)
            self._memtable.merge(key, operand)
            if cache is not None:
                cache.invalidate(key)
        self._maybe_flush()

    # -- reads ----------------------------------------------------------------

    def get(self, key: str) -> Any:
        """Return the value for ``key``, or None if absent/deleted."""
        self._check_open()
        stats = self.stats
        stats.gets += 1
        cache = self._row_cache
        if cache is not None:
            cached = cache.lookup(key)
            if cached is not None:
                stats.cache_hits += 1
                return None if cached is _ABSENT else cached
            stats.cache_misses += 1
        value = self._lookup(key)
        if cache is not None:
            cache.store(key, _ABSENT if value is None else value)
        return value

    def _lookup(self, key: str) -> Any:
        """Resolve ``key`` against the memtable and filter-passing runs."""
        stats = self.stats
        pending: list[Any] = []  # newer-first merge operands awaiting a base

        entry = self._memtable.get(key)
        if entry is not None:
            resolved, done = self._absorb(entry, pending)
            if done:
                return resolved

        sstables = self._sstables
        if sstables:
            h1, h2 = hash_pair(key)
            for sstable in reversed(sstables):  # newest first
                min_key = sstable.min_key
                if min_key is None or key < min_key or key > sstable.max_key:
                    stats.range_skips += 1
                    continue
                if not sstable.bloom.may_contain_hashed(h1, h2):
                    stats.bloom_skips += 1
                    continue
                stats.sstable_probes += 1
                entry = sstable.get(key)
                if entry is None:
                    continue
                resolved, done = self._absorb(entry, pending)
                if done:
                    return resolved

        if pending:
            # Chain bottomed out: fold onto the operator's identity.
            return self.merge_operator.full_merge(None, reversed(pending))
        return None

    def multi_get(self, keys: list[str]) -> dict[str, Any]:
        """Resolve many keys, walking each SSTable run at most once.

        Cache-hitting keys are served first; the misses are sorted and
        probed as one monotone pass per run (:meth:`SSTable.get_sorted`),
        with the range/bloom pre-checks shared across the batch — instead
        of ``len(keys)`` independent :meth:`get` calls each restarting
        the run search from scratch.
        """
        self._check_open()
        stats = self.stats
        stats.multi_gets += 1
        stats.multi_get_keys += len(keys)
        stats.gets += len(keys)
        cache = self._row_cache
        results: dict[str, Any] = {}
        misses: set[str] = set()
        for key in keys:
            if key in results or key in misses:
                continue
            if cache is not None:
                cached = cache.lookup(key)
                if cached is not None:
                    stats.cache_hits += 1
                    results[key] = None if cached is _ABSENT else cached
                    continue
                stats.cache_misses += 1
            misses.add(key)

        if misses:
            resolved = self._lookup_sorted(sorted(misses))
            results.update(resolved)
            if cache is not None:
                for key, value in resolved.items():
                    cache.store(key, _ABSENT if value is None else value)
        return {key: results[key] for key in keys}

    def _lookup_sorted(self, sorted_keys: list[str]) -> dict[str, Any]:
        """Resolve an ascending, de-duplicated key list against all runs."""
        stats = self.stats
        results: dict[str, Any] = {}
        # key -> newest-first merge operands still awaiting a base value.
        pending: dict[str, list[Any]] = {}
        open_keys: list[str] = []  # still unresolved, kept sorted

        memtable_get = self._memtable.get
        for key in sorted_keys:
            entry = memtable_get(key)
            if entry is not None:
                chain: list[Any] = []
                value, done = self._absorb(entry, chain)
                if done:
                    results[key] = value
                    continue
                pending[key] = chain
            open_keys.append(key)

        hashes = {key: hash_pair(key) for key in open_keys}
        for sstable in reversed(self._sstables):  # newest first
            if not open_keys:
                break
            min_key = sstable.min_key
            if min_key is None:
                continue
            max_key = sstable.max_key
            lo = bisect_left(open_keys, min_key)
            hi = bisect_right(open_keys, max_key, lo)
            stats.range_skips += len(open_keys) - (hi - lo)
            if lo == hi:
                continue
            bloom = sstable.bloom
            candidates = []
            for key in open_keys[lo:hi]:
                h1, h2 = hashes[key]
                if bloom.may_contain_hashed(h1, h2):
                    candidates.append(key)
                else:
                    stats.bloom_skips += 1
            if not candidates:
                continue
            stats.multi_get_run_walks += 1
            stats.sstable_probes += len(candidates)
            closed: set[str] = set()
            for key, entry in zip(candidates, sstable.get_sorted(candidates)):
                if entry is None:
                    continue
                chain = pending.setdefault(key, [])
                value, done = self._absorb(entry, chain)
                if done:
                    results[key] = value
                    pending.pop(key, None)
                    closed.add(key)
            if closed:
                open_keys = [key for key in open_keys if key not in closed]

        operator = self.merge_operator
        for key in open_keys:
            chain = pending.get(key)
            if chain:
                results[key] = operator.full_merge(None, reversed(chain))
            else:
                results[key] = None
        return results

    def scan(self, start: str | None = None,
             end: str | None = None) -> Iterator[tuple[str, Any]]:
        """Yield (key, value) in key order over ``[start, end)``.

        Scans resolve keys via :meth:`_lookup` directly, bypassing the
        row cache so a large range read cannot evict the hot point-read
        set (the classic scan-pollution problem).
        """
        self._check_open()
        keys: set[str] = set()
        for key in self._memtable.keys():
            if _in_range(key, start, end):
                keys.add(key)
        for sstable in self._sstables:
            for key, _ in sstable.scan(start, end):
                keys.add(key)
        for key in sorted(keys):
            value = self._lookup(key)
            if value is not None:
                yield key, value

    def _absorb(self, entry: Entry, pending: list[Any]) -> tuple[Any, bool]:
        """Fold ``entry`` under the pending newer operands.

        Returns (value, done): done is False when the entry was merely a
        merge chain and the search must continue into older runs.
        """
        if entry.kind == EntryKind.MERGE:
            pending.extend(reversed(entry.operands))  # keep newest first
            return None, False
        if entry.kind == EntryKind.TOMBSTONE:
            if pending:
                return (self.merge_operator.full_merge(None, reversed(pending)),
                        True)
            return None, True
        # PUT: fold the entry's own trailing operands, then the newer ones.
        value = entry.value
        if entry.operands or pending:
            operands = list(entry.operands) + list(reversed(pending))
            value = self.merge_operator.full_merge(value, operands)
        return value, True

    # -- flush & compaction -----------------------------------------------------

    def _maybe_flush(self) -> None:
        if self._memtable.approximate_bytes >= self.memtable_flush_bytes:
            self.flush()

    def flush(self) -> None:
        """Flush the memtable to a new SSTable and truncate the WAL."""
        self._check_open()
        if len(self._memtable) == 0:
            return
        state = self._disk_state()
        entries = list(self._memtable.items())
        state["sstables"].append(SSTable(entries))
        state["flushed_seq"] = state["wal"].next_sequence
        state["wal"].truncate_before(state["flushed_seq"])
        self._memtable = Memtable()
        self.stats.flushes += 1
        if len(state["sstables"]) > self.compaction_trigger:
            self.compact_step()

    def compact_step(self, max_runs: int | None = None) -> int:
        """Merge one bounded group of runs; return how many were merged.

        Size-tiered selection: the runs list is age-ordered (oldest
        first) and levels are non-increasing along it. The step picks the
        newest contiguous same-level group that has reached the fanout
        (``compaction_trigger``) and merges its oldest ``max_runs`` runs
        into a single run one level up — so each call touches a bounded
        number of runs, never the whole store. Under run-count pressure
        with no full group, the cheapest relieving merge is taken
        instead (the newest mergeable group, or a fold of the newest
        singleton runs); tombstones are dropped only when the merged
        window includes the oldest run (nothing older can resurface the
        key).

        Returns 0 when there is nothing eligible, so recurring schedules
        (:meth:`schedule_compaction`) idle cheaply.
        """
        self._check_open()
        limit = self.max_compact_runs if max_runs is None else max_runs
        if limit < 2:
            raise ValueError("a compaction step needs at least 2 runs")
        state = self._disk_state()
        runs: list[SSTable] = state["sstables"]
        if len(runs) <= 1:
            return 0
        window = self._select_step(runs, limit)
        if window is None:
            return 0
        start, stop, promote = window
        self._merge_runs(state, start, stop, promote=promote)
        return stop - start

    def _select_step(self, runs: list[SSTable], limit: int
                     ) -> tuple[int, int, bool] | None:
        """The ``(start, stop, promote)`` window the next step should merge."""
        fanout = max(2, self.compaction_trigger)
        # Maximal contiguous same-level groups, newest (rightmost) first.
        groups: list[tuple[int, int]] = []
        stop = len(runs)
        while stop > 0:
            start = stop - 1
            level = runs[start].level
            while start > 0 and runs[start - 1].level == level:
                start -= 1
            groups.append((start, stop))
            stop = start
        for start, stop in groups:
            if stop - start >= fanout:
                return start, min(stop, start + limit), True
        if len(runs) > self.compaction_trigger:
            # Pressure fallback: no group filled its tier yet, but runs
            # keep piling up. Two candidate windows relieve pressure:
            # the newest same-level group of at least two runs (a real
            # tier merge, graduating one level up), or the suffix of
            # newest singleton groups — levels strictly decrease there,
            # so folding them (at the level of their largest input, no
            # graduation) keeps the non-increasing invariant and never
            # drags a half-empty deep tier into the step. Pick whichever
            # touches fewer entries: pauses stay proportional to the
            # *new* data, and the big bottom runs only merge when their
            # own tier genuinely fills (or via an explicit compact()).
            candidates: list[tuple[int, int, bool]] = []
            for start, stop in groups:
                if stop - start >= 2:
                    candidates.append((start, min(stop, start + limit), True))
                    break
            singletons = 0
            for start, stop in groups:
                if stop - start != 1:
                    break
                singletons += 1
            if singletons >= 2:
                candidates.append(
                    (len(runs) - min(singletons, limit), len(runs), False))
            if candidates:
                return min(candidates, key=lambda window: sum(
                    len(runs[i]) for i in range(window[0], window[1])))
        return None

    def _merge_runs(self, state: dict[str, Any], start: int, stop: int,
                    promote: bool = True) -> None:
        """Merge ``runs[start:stop]`` into one run, one level up when
        ``promote`` (a tier graduating) or at the largest input's level
        when not (a pressure fold of newest runs)."""
        runs: list[SSTable] = state["sstables"]
        window = runs[start:stop]
        operator = self.merge_operator
        merged: dict[str, Entry] = {}
        entries_in = 0
        for run in window:  # oldest first, so newer entries overwrite/fold
            entries_in += len(run)
            for key, entry in run.items():
                merged[key] = _fold(merged.get(key), entry, operator)
        bottom = start == 0
        survivors: list[tuple[str, Entry]] = []
        for key in sorted(merged):
            entry = merged[key]
            if bottom and entry.kind == EntryKind.TOMBSTONE:
                continue  # bottom level: drop dead keys
            if operator is not None:
                entry = _collapse(entry, operator)
            survivors.append((key, entry))
        level = max(run.level for run in window) + (1 if promote else 0)
        runs[start:stop] = [SSTable(survivors, level=level)] if survivors else []
        stats = self.stats
        stats.compact_steps += 1
        stats.compacted_entries += entries_in
        if entries_in > stats.max_step_entries:
            stats.max_step_entries = entries_in

    def compact(self) -> None:
        """Merge every run into one (the legacy full compaction).

        Built from bounded steps: each iteration merges the oldest
        ``max_compact_runs`` runs, so even the full merge never holds
        more than that many runs' entries as an in-flight dict.
        """
        self._check_open()
        state = self._disk_state()
        if len(state["sstables"]) <= 1:
            return
        while len(state["sstables"]) > 1:
            stop = min(len(state["sstables"]), self.max_compact_runs)
            self._merge_runs(state, 0, stop)
        self.stats.compactions += 1

    def schedule_compaction(self, scheduler, interval: float):
        """Run one :meth:`compact_step` every ``interval`` virtual seconds.

        ``scheduler`` is any object with a ``Scheduler.every``-shaped
        method. Each firing does one bounded step (a no-op when no tier
        is full), so maintenance cost is spread over virtual time instead
        of landing as one unbounded pause. Returns the timer handle;
        cancel it to stop, e.g. before closing the store.
        """

        def tick() -> None:
            if not self._closed:
                self.compact_step()

        return scheduler.every(interval, tick)

    # -- lifecycle & recovery ----------------------------------------------------

    def drop_memory(self) -> None:
        """Simulate a process crash: lose the memtable, keep the disk."""
        self._memtable = Memtable()
        # Unflushed writes are gone, so cached resolutions may be stale.
        if self._row_cache is not None:
            self._row_cache.clear()

    def recover(self) -> int:
        """Rebuild the memtable from unflushed WAL records; return count."""
        self._memtable = Memtable()
        if self._row_cache is not None:
            self._row_cache.clear()
        state = self._disk_state()
        count = 0
        for record in state["wal"].records_since(state["flushed_seq"]):
            if record.op == WalOp.PUT:
                self._memtable.put(record.key, record.value)
            elif record.op == WalOp.DELETE:
                self._memtable.delete(record.key)
            else:
                self._memtable.merge(record.key, record.value)
            count += 1
        return count

    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosed(f"store {self.name!r} is closed")

    # -- introspection ------------------------------------------------------------

    @property
    def num_sstables(self) -> int:
        return len(self._sstables)

    @property
    def levels(self) -> list[int]:
        """Per-run levels, oldest first (non-increasing by invariant)."""
        return [run.level for run in self._sstables]

    @property
    def memtable_size(self) -> int:
        return len(self._memtable)

    @property
    def row_cache_len(self) -> int:
        return len(self._row_cache) if self._row_cache is not None else 0

    def approximate_key_count(self) -> int:
        """Upper bound on live keys (duplicates across runs counted once)."""
        keys: set[str] = set(self._memtable.keys())
        for sstable in self._sstables:
            for key, _ in sstable.items():
                keys.add(key)
        return len(keys)


def _collapse(entry: Entry, operator: MergeOperator) -> Entry:
    """Collapse an entry's operand chain during a level merge.

    Monoid operand collapsing: a surviving MERGE chain of N operands
    becomes a single pre-folded operand, and a PUT with trailing
    operands folds them into its value — so reads through compacted
    levels pay one merge instead of replaying the whole chain. Safe
    because every operator is associative with a true identity.
    """
    if entry.kind == EntryKind.MERGE:
        if len(entry.operands) > 1:
            return Entry(EntryKind.MERGE,
                         operands=[operator.partial_merge(entry.operands)])
        return entry
    if entry.kind == EntryKind.PUT and entry.operands:
        return Entry(EntryKind.PUT,
                     value=operator.full_merge(entry.value, entry.operands))
    return entry


def _fold(older: Entry | None, newer: Entry,
          operator: MergeOperator | None) -> Entry:
    """Combine an older entry with a newer one during compaction."""
    if newer.kind != EntryKind.MERGE:
        return newer  # put/tombstone shadows everything older
    if older is None:
        return Entry(EntryKind.MERGE, operands=list(newer.operands))
    if older.kind == EntryKind.MERGE:
        return Entry(EntryKind.MERGE,
                     operands=list(older.operands) + list(newer.operands))
    if older.kind == EntryKind.TOMBSTONE:
        value = operator.full_merge(None, newer.operands)
        return Entry(EntryKind.PUT, value=value)
    # older is PUT: fold its trailing operands plus the newer chain now.
    value = operator.full_merge(older.value,
                                list(older.operands) + list(newer.operands))
    return Entry(EntryKind.PUT, value=value)


def _in_range(key: str, start: str | None, end: str | None) -> bool:
    if start is not None and key < start:
        return False
    if end is not None and key >= end:
        return False
    return True
