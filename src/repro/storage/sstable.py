"""Immutable sorted runs (SSTables) for the LSM store."""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator

from repro.storage.memtable import Entry


class SSTable:
    """An immutable, key-sorted sequence of entries.

    Built either by flushing a memtable or by compacting older runs.
    Lookups are binary searches; range scans are slices.
    """

    def __init__(self, entries: list[tuple[str, Entry]], level: int = 0) -> None:
        keys = [key for key, _ in entries]
        if keys != sorted(keys):
            raise ValueError("SSTable entries must be in sorted key order")
        if len(set(keys)) != len(keys):
            raise ValueError("SSTable entries must have unique keys")
        self._keys = keys
        self._entries = [entry for _, entry in entries]
        self.level = level

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def min_key(self) -> str | None:
        return self._keys[0] if self._keys else None

    @property
    def max_key(self) -> str | None:
        return self._keys[-1] if self._keys else None

    def get(self, key: str) -> Entry | None:
        index = bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return self._entries[index]
        return None

    def scan(self, start: str | None = None,
             end: str | None = None) -> Iterator[tuple[str, Entry]]:
        """Yield (key, entry) for keys in ``[start, end)``."""
        lo = 0 if start is None else bisect_left(self._keys, start)
        hi = len(self._keys) if end is None else bisect_left(self._keys, end)
        for index in range(lo, hi):
            yield self._keys[index], self._entries[index]

    def items(self) -> Iterator[tuple[str, Entry]]:
        yield from zip(self._keys, self._entries)
