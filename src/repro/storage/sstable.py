"""Immutable sorted runs (SSTables) for the LSM store.

Each run carries the two structures a real SSTable file has for point
reads:

- a **bloom filter** over its keys, so a lookup of a key the run does
  not hold is (almost always) rejected without touching the data; and
- a **sparse index** — the first key of every block of
  ``INDEX_INTERVAL`` entries — which narrows a lookup to one block
  before the final binary search, the index-block → data-block shape of
  an on-disk table.

:meth:`get` is only called after the filter and key-range checks pass
(see :meth:`may_contain_hashed`), which is what the LSM's scan counters
measure.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator

from repro.storage.bloom import BloomFilter, hash_pair
from repro.storage.memtable import Entry

#: Entries per data block; the sparse index keeps one key per block.
INDEX_INTERVAL = 16


class SSTable:
    """An immutable, key-sorted sequence of entries.

    Built either by flushing a memtable or by compacting older runs.
    Lookups are filter-gated binary searches; range scans are slices.
    """

    def __init__(self, entries: list[tuple[str, Entry]], level: int = 0) -> None:
        keys = [key for key, _ in entries]
        if keys != sorted(keys):
            raise ValueError("SSTable entries must be in sorted key order")
        if len(set(keys)) != len(keys):
            raise ValueError("SSTable entries must have unique keys")
        self._keys = keys
        self._entries = [entry for _, entry in entries]
        self.level = level
        self.bloom = BloomFilter(keys)
        # Sparse index: first key of each INDEX_INTERVAL-sized block.
        self._index_keys = keys[::INDEX_INTERVAL]

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def min_key(self) -> str | None:
        return self._keys[0] if self._keys else None

    @property
    def max_key(self) -> str | None:
        return self._keys[-1] if self._keys else None

    # -- point reads ----------------------------------------------------------

    def may_contain(self, key: str) -> bool:
        """Cheap pre-check: False means ``get`` would surely return None."""
        return self.may_contain_hashed(key, *hash_pair(key))

    def may_contain_hashed(self, key: str, h1: int, h2: int) -> bool:
        """Pre-check with a shared :func:`~repro.storage.bloom.hash_pair`."""
        if not self._keys or key < self._keys[0] or key > self._keys[-1]:
            return False
        return self.bloom.may_contain_hashed(h1, h2)

    def get(self, key: str) -> Entry | None:
        # Sparse index narrows to one block, then a bounded bisect.
        block = bisect_right(self._index_keys, key) - 1
        if block < 0:
            return None
        lo = block * INDEX_INTERVAL
        hi = min(lo + INDEX_INTERVAL, len(self._keys))
        index = bisect_left(self._keys, key, lo, hi)
        if index < len(self._keys) and self._keys[index] == key:
            return self._entries[index]
        return None

    def get_sorted(self, keys: list[str]) -> list[Entry | None]:
        """Entries for an *ascending* key list in one forward walk.

        Each bisect is bounded below by the previous hit position, so a
        whole sorted probe set costs one monotone pass over the run
        instead of ``len(keys)`` independent full-range searches — the
        building block of :meth:`LsmStore.multi_get`.
        """
        run_keys = self._keys
        entries = self._entries
        n = len(run_keys)
        out: list[Entry | None] = []
        append = out.append
        lo = 0
        for key in keys:
            lo = bisect_left(run_keys, key, lo, n)
            if lo < n and run_keys[lo] == key:
                append(entries[lo])
            else:
                append(None)
        return out

    # -- scans ----------------------------------------------------------------

    def scan(self, start: str | None = None,
             end: str | None = None) -> Iterator[tuple[str, Entry]]:
        """Yield (key, entry) for keys in ``[start, end)``."""
        lo = 0 if start is None else bisect_left(self._keys, start)
        hi = len(self._keys) if end is None else bisect_left(self._keys, end)
        for index in range(lo, hi):
            yield self._keys[index], self._entries[index]

    def items(self) -> Iterator[tuple[str, Entry]]:
        yield from zip(self._keys, self._entries)
