"""The remaining Section 1 production use cases: page insights and
mobile analytics.

- **Page insights** "provide Facebook Page owners realtime information
  about the likes, reach and engagement for each page post". Reach is a
  distinct-viewer count — the HyperLogLog use the paper endorses
  ("good approximate unique counts are often as actionable as exact
  numbers", Section 6.5).
- **Mobile analytics** pipelines give app developers realtime feedback
  "to diagnose performance and correctness issues, such as the cold
  start time and crash rate".

Both are ordinary Puma apps; serving goes through the app's query API
(thousands of queries per second) with optional publication to Laser
(millions, Section 3).
"""

from __future__ import annotations

from typing import Any

from repro.laser.service import LaserTable
from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.runtime.clock import Clock
from repro.scribe.store import ScribeStore
from repro.storage.hbase import HBaseTable

Row = dict[str, Any]

PAGE_INSIGHTS_PQL = """
CREATE APPLICATION page_insights;

CREATE INPUT TABLE page_actions(
    event_time, page, post, action, viewer
)
FROM SCRIBE("page_actions")
TIME event_time;

CREATE TABLE post_likes AS
SELECT page, post, count(*) AS likes
FROM page_actions [5 minutes]
WHERE action = 'like';

CREATE TABLE post_reach AS
SELECT page, post, approx_distinct(viewer) AS reach
FROM page_actions [5 minutes]
WHERE action = 'view';

CREATE TABLE post_engagement AS
SELECT page, post, count(*) AS engagements
FROM page_actions [5 minutes]
WHERE action IN ('like', 'comment', 'share');
"""

MOBILE_ANALYTICS_PQL = """
CREATE APPLICATION mobile_analytics;

CREATE INPUT TABLE app_events(
    event_time, app_version, kind, cold_start_ms
)
FROM SCRIBE("app_events")
TIME event_time;

CREATE TABLE cold_start AS
SELECT app_version,
       approx_percentile(cold_start_ms, 95, 25) AS p95_ms,
       avg(cold_start_ms) AS mean_ms,
       count(*) AS starts
FROM app_events [5 minutes]
WHERE kind = 'cold_start';

CREATE TABLE crashes AS
SELECT app_version, count(*) AS crashes
FROM app_events [5 minutes]
WHERE kind = 'crash';

CREATE TABLE sessions AS
SELECT app_version, count(*) AS sessions
FROM app_events [5 minutes]
WHERE kind = 'session_start';
"""


class PageInsightsPipeline:
    """Realtime likes / reach / engagement per page post."""

    def __init__(self, scribe: ScribeStore, clock: Clock | None = None,
                 num_buckets: int = 4) -> None:
        scribe.ensure_category("page_actions", num_buckets)
        self.app = PumaApp(plan(parse(PAGE_INSIGHTS_PQL)), scribe,
                           HBaseTable("page_insights_state"), clock=clock)

    def pump(self, max_messages: int = 10_000) -> int:
        return self.app.pump(max_messages)

    def post_summary(self, page: str, post: str,
                     window_start: float) -> Row:
        """What the page owner's dashboard shows for one post."""
        def value(table: str, metric: str) -> Any:
            for row in self.app.query(table, window_start):
                if row["page"] == page and row["post"] == post:
                    return row[metric]
            return 0

        return {
            "page": page,
            "post": post,
            "window_start": window_start,
            "likes": value("post_likes", "likes"),
            "reach": value("post_reach", "reach"),
            "engagements": value("post_engagement", "engagements"),
        }

    def publish_to_laser(self, laser: LaserTable,
                         window_start: float) -> int:
        """Push the window's summaries to Laser for product queries."""
        published = 0
        posts = {
            (row["page"], row["post"])
            for table in ("post_likes", "post_reach", "post_engagement")
            for row in self.app.query(table, window_start)
        }
        for page, post in sorted(posts):
            laser.put_row(self.post_summary(page, post, window_start))
            published += 1
        return published


class MobileAnalyticsPipeline:
    """Cold-start percentiles and crash rates per app version."""

    def __init__(self, scribe: ScribeStore, clock: Clock | None = None,
                 num_buckets: int = 4) -> None:
        scribe.ensure_category("app_events", num_buckets)
        self.app = PumaApp(plan(parse(MOBILE_ANALYTICS_PQL)), scribe,
                           HBaseTable("mobile_analytics_state"), clock=clock)

    def pump(self, max_messages: int = 10_000) -> int:
        return self.app.pump(max_messages)

    def version_health(self, app_version: str, window_start: float) -> Row:
        """The developer-facing health card for one app version."""
        def row_for(table: str) -> Row | None:
            for row in self.app.query(table, window_start):
                if row["app_version"] == app_version:
                    return row
            return None

        cold = row_for("cold_start")
        crash_row = row_for("crashes")
        session_row = row_for("sessions")
        sessions = session_row["sessions"] if session_row else 0
        crashes = crash_row["crashes"] if crash_row else 0
        return {
            "app_version": app_version,
            "window_start": window_start,
            "cold_start_p95_ms": cold["p95_ms"] if cold else None,
            "cold_start_mean_ms": cold["mean_ms"] if cold else None,
            "crash_rate": crashes / sessions if sessions else None,
            "sessions": sessions,
        }

    def regressed_versions(self, window_start: float,
                           p95_budget_ms: float = 800.0,
                           crash_budget: float = 0.02) -> list[str]:
        """Versions out of budget in the window — the paging signal."""
        versions = {
            row["app_version"]
            for table in ("cold_start", "sessions")
            for row in self.app.query(table, window_start)
        }
        bad = []
        for version in sorted(versions):
            health = self.version_health(version, window_start)
            p95 = health["cold_start_p95_ms"]
            crash_rate = health["crash_rate"]
            if ((p95 is not None and p95 > p95_budget_ms)
                    or (crash_rate is not None
                        and crash_rate > crash_budget)):
                bad.append(version)
        return bad
