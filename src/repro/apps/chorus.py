"""The Chorus pipeline (paper Section 5.1).

Chorus "transforms a stream of individual Facebook posts into
aggregated, anonymized, and annotated visual summaries". The pipeline
here mirrors the paper's structure — "a mix of Puma and Stylus apps,
with lookup joins in Laser and both Hive and Scuba as sink data stores,
all data transport via Scribe":

1. a Puma filter app keeps posts with hashtags (the original pipeline
   "had only one Puma app to filter posts");
2. a Stylus monoid app aggregates per-window hashtag counts broken down
   by demographic (age, gender, country), using a Laser lookup join for
   country normalization;
3. results flow to Scuba (realtime dashboards) and Hive (long-term);
4. the query surface applies **k-anonymity suppression**: demographic
   cells with fewer than ``k_anonymity`` posts are never revealed.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.topk import SpaceSaving
from repro.core.dag import Dag
from repro.core.event import Event
from repro.core.windows import TumblingWindow
from repro.laser.service import LaserTable
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.puma.app import PumaApp
from repro.runtime.clock import Clock
from repro.scribe.store import ScribeStore
from repro.scuba.ingest import ScubaIngester
from repro.scuba.table import ScubaTable
from repro.storage.hbase import HBaseTable
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusJob
from repro.stylus.processor import Output, StatefulProcessor

FILTER_PQL = """
CREATE APPLICATION chorus_filter;

CREATE INPUT TABLE posts(
    event_time,
    post_id,
    hashtag,
    text,
    age_bucket,
    gender,
    country
)
FROM SCRIBE("chorus_posts")
TIME event_time;

CREATE TABLE chorus_tagged AS
SELECT event_time, post_id, hashtag, age_bucket, gender, country
FROM posts
WHERE contains(hashtag, '#');
"""

REGION_BY_COUNTRY = {
    "US": "amer", "BR": "amer", "MX": "amer",
    "GB": "emea", "DE": "emea",
    "IN": "apac", "ID": "apac", "JP": "apac",
}


class ChorusAggregator(StatefulProcessor):
    """Per-window hashtag counts with demographic breakdowns.

    State: window_start -> {"topics": SpaceSaving-state,
    "demo": {(hashtag, age, gender, region): count}}. The Laser lookup
    join resolves country -> region (the paper's "identifying the topic
    for a given hashtag" style of join).
    """

    def __init__(self, regions: LaserTable,
                 window_seconds: float = 300.0,
                 sketch_capacity: int = 50) -> None:
        self.regions = regions
        self.window = TumblingWindow(window_seconds)
        self.sketch_capacity = sketch_capacity

    def initial_state(self) -> dict[float, dict[str, Any]]:
        return {}

    def _window_state(self, state: dict, start: float) -> dict[str, Any]:
        if start not in state:
            state[start] = {
                "topics": SpaceSaving(self.sketch_capacity).to_state(),
                "demo": {},
            }
        return state[start]

    def process(self, event: Event, state: dict) -> list[Output]:
        start = self.window.window_containing(event.event_time).start
        window_state = self._window_state(state, start)
        hashtag = str(event["hashtag"])

        sketch = SpaceSaving.from_state(window_state["topics"])
        sketch.add(hashtag)
        window_state["topics"] = sketch.to_state()

        looked_up = self.regions.get(str(event.get("country")))
        region = looked_up["region"] if looked_up else "unknown"
        cell = "|".join((hashtag, str(event.get("age_bucket")),
                         str(event.get("gender")), region))
        window_state["demo"][cell] = window_state["demo"].get(cell, 0) + 1
        return []

    def on_checkpoint(self, state: dict, now: float) -> list[Output]:
        """Emit the per-window top topics downstream (to Scuba/Hive)."""
        outputs = []
        for start, window_state in state.items():
            sketch = SpaceSaving.from_state(window_state["topics"])
            for rank, (hashtag, count) in enumerate(sketch.top(5)):
                outputs.append(Output(
                    {"event_time": now, "window_start": start,
                     "hashtag": hashtag, "count": count, "rank": rank},
                    key=hashtag,
                ))
        return outputs


class ChorusPipeline:
    """The assembled pipeline plus its anonymized query surface."""

    def __init__(self, scribe: ScribeStore, clock: Clock | None = None,
                 window_seconds: float = 300.0, k_anonymity: int = 10,
                 num_buckets: int = 4) -> None:
        self.scribe = scribe
        self.k_anonymity = k_anonymity
        self.window_seconds = window_seconds

        scribe.ensure_category("chorus_posts", num_buckets)
        scribe.ensure_category("chorus_summaries", 1)

        # The Laser lookup-join table (country -> region).
        self.regions = LaserTable("regions", ["country"], ["region"],
                                  clock=clock)
        for country, region in REGION_BY_COUNTRY.items():
            self.regions.put_row({"country": country, "region": region})

        # Stage 1: Puma filter.
        self.filter_app = PumaApp(plan(parse(FILTER_PQL)), scribe,
                                  HBaseTable("chorus_filter_state"),
                                  clock=clock)

        # Stage 2: Stylus aggregation (replacing "custom Python code",
        # as the pipeline's evolution in the paper did).
        self.aggregator = StylusJob.create(
            "chorus_agg", scribe, "chorus_tagged",
            lambda: ChorusAggregator(self.regions, window_seconds),
            output_category="chorus_summaries", clock=clock,
            checkpoint_policy=CheckpointPolicy(interval_seconds=60.0),
        )

        # Sinks: Scuba for realtime inspection of the summaries.
        self.scuba_table = ScubaTable("chorus_summaries")
        self.scuba_ingest = ScubaIngester(scribe, "chorus_summaries",
                                          self.scuba_table)

        self.dag = Dag("chorus")
        self.dag.add(self.filter_app, reads=["chorus_posts"],
                     writes=["chorus_tagged"])
        self.dag.add(self.aggregator, reads=["chorus_tagged"],
                     writes=["chorus_summaries"])
        self.dag.add(self.scuba_ingest, reads=["chorus_summaries"])

    def pump(self, max_messages: int = 10_000) -> int:
        return self.dag.pump_once(max_messages)

    def run_until_quiescent(self) -> int:
        return self.dag.run_until_quiescent()

    def checkpoint_all(self) -> None:
        self.aggregator.checkpoint_now()

    # -- the public, anonymized query surface ------------------------------------

    def _merged_state(self) -> dict[float, dict[str, Any]]:
        merged: dict[float, dict[str, Any]] = {}
        for task in self.aggregator.tasks:
            for start, window_state in (task.state or {}).items():
                if start not in merged:
                    merged[start] = {
                        "topics": SpaceSaving(1).to_state(), "demo": {},
                    }
                merged[start]["topics"] = (
                    SpaceSaving.from_state(merged[start]["topics"])
                    .merge(SpaceSaving.from_state(window_state["topics"]))
                    .to_state()
                )
                for cell, count in window_state["demo"].items():
                    merged[start]["demo"][cell] = (
                        merged[start]["demo"].get(cell, 0) + count
                    )
        return merged

    def top_topics(self, window_start: float, k: int = 5
                   ) -> list[tuple[str, float]]:
        """'What are the top K topics being discussed right now?'"""
        state = self._merged_state().get(window_start)
        if state is None:
            return []
        return SpaceSaving.from_state(state["topics"]).top(k)

    def demographic_breakdown(self, window_start: float, hashtag: str
                              ) -> dict[str, int]:
        """Anonymized demographics for one hashtag in one window.

        Cells below the k-anonymity threshold are suppressed — the
        aggregates must "not reveal any private information".
        """
        state = self._merged_state().get(window_start)
        if state is None:
            return {}
        return {
            cell.split("|", 1)[1]: count
            for cell, count in state["demo"].items()
            if cell.startswith(hashtag + "|") and count >= self.k_anonymity
        }

    def windows(self) -> list[float]:
        return sorted(self._merged_state())
