"""The Figure 3 trending-events pipeline.

Four nodes connected by Scribe streams, exactly as in the paper:

1. **Filterer** (stateless, could be Puma or Stylus): keeps events of
   the interesting type and *shards its output on the dimension id* so
   the Joiner's cache works well.
2. **Joiner** (stateless Stylus; "Puma cannot do" the arbitrary-service
   call): looks the dimension id up in Laser, classifies the event topic
   by querying an external classifier service (with a local cache), and
   *re-shards by (event, topic)*.
3. **Scorer** (stateful Stylus): sliding-window counts per topic plus a
   long-term trend (an exponentially weighted moving average); emits a
   score per (event, topic) each checkpoint, re-sharded by topic.
4. **Ranker** (Puma — the Figure 2 app): top-K scores per topic per
   5-minute bucket, queryable; optionally published to Laser so products
   query Laser at millisecond latency instead (Section 3).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any

from repro.core.dag import Dag
from repro.core.event import Event
from repro.laser.service import LaserTable
from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.runtime.clock import Clock
from repro.runtime.metrics import MetricsRegistry
from repro.scribe.store import ScribeStore
from repro.storage.hbase import HBaseTable
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusJob
from repro.stylus.processor import Output, StatefulProcessor, StatelessProcessor
from repro.workloads.events import TOPICS


class ClassifierService:
    """The external classification service the Joiner queries by RPC.

    Real classification is out of scope; topic extraction is keyword
    matching over a fixed topic list, but every call is counted so the
    cache-effectiveness story (Section 3: sharded input -> better cache
    hit rate -> fewer network calls) is measurable.
    """

    def __init__(self) -> None:
        self.calls = 0

    def classify(self, text: str) -> str:
        self.calls += 1
        lowered = text.lower()
        for topic in TOPICS:
            if topic in lowered:
                return topic
        return "other"


class FiltererProcessor(StatelessProcessor):
    """Node 1: filter by event type, shard output by dimension id."""

    def __init__(self, keep_type: str = "post") -> None:
        self.keep_type = keep_type

    def process(self, event: Event) -> list[Output]:
        if event.get("event_type") != self.keep_type:
            return []
        record = event.to_record()
        return [Output(record, key=str(event["dim_id"]))]


class JoinerProcessor(StatelessProcessor):
    """Node 2: Laser lookup join + classifier call, re-shard by topic.

    ``cache_capacity`` bounds the local dimension cache (LRU). Because
    the input is sharded by dim_id, each Joiner instance sees a small
    slice of the dimension space and the cache hit rate is high.
    """

    def __init__(self, dimensions: LaserTable, classifier: ClassifierService,
                 cache_capacity: int = 128) -> None:
        self.dimensions = dimensions
        self.classifier = classifier
        self.cache_capacity = cache_capacity
        self._cache: OrderedDict[str, dict[str, Any] | None] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def _lookup(self, dim_id: str) -> dict[str, Any] | None:
        if dim_id in self._cache:
            self.cache_hits += 1
            self._cache.move_to_end(dim_id)
            return self._cache[dim_id]
        self.cache_misses += 1
        row = self.dimensions.get(dim_id)
        self._cache[dim_id] = row
        if len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)
        return row

    def process(self, event: Event) -> list[Output]:
        dim = self._lookup(str(event["dim_id"]))
        topic = self.classifier.classify(str(event.get("text", "")))
        record = event.to_record()
        record["language"] = dim.get("language") if dim else None
        record["country"] = dim.get("country") if dim else None
        record["topic"] = topic
        # Re-shard by the (event, topic) pair for parallel scoring.
        key = f"{record.get('event_type')}:{topic}"
        return [Output(record, key=key)]

    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class ScorerProcessor(StatefulProcessor):
    """Node 3: short-term window counts vs. a long-term trend.

    State per topic: a deque of (event_time, count) minute sub-buckets
    for the sliding window, plus an EWMA of per-window counts as the
    long-term trend. The emitted score is the ratio of current activity
    to trend — high when a topic is unusually busy, i.e. *trending*.
    """

    def __init__(self, window_seconds: float = 300.0,
                 trend_decay: float = 0.8) -> None:
        self.window_seconds = window_seconds
        self.trend_decay = trend_decay

    def initial_state(self) -> dict[str, Any]:
        return {"windows": {}, "trend": {}, "last_emit": 0.0}

    def process(self, event: Event, state: dict[str, Any]) -> list[Output]:
        topic = str(event.get("topic", "other"))
        buckets = state["windows"].setdefault(topic, deque())
        minute = int(event.event_time // 60)
        if buckets and buckets[-1][0] == minute:
            buckets[-1][1] += 1
        else:
            buckets.append([minute, 1])
        return []

    def _window_count(self, buckets: deque, now: float) -> int:
        horizon = (now - self.window_seconds) / 60.0
        while buckets and buckets[0][0] < horizon:
            buckets.popleft()
        return sum(count for _, count in buckets)

    def on_checkpoint(self, state: dict[str, Any], now: float) -> list[Output]:
        outputs = []
        for topic, buckets in state["windows"].items():
            current = self._window_count(buckets, now)
            trend = state["trend"].get(topic, 0.0)
            score = current / (trend + 1.0)
            state["trend"][topic] = (self.trend_decay * trend
                                     + (1 - self.trend_decay) * current)
            outputs.append(Output(
                {"event_time": now, "event": topic, "category": "topics",
                 "score": round(score, 4)},
                key=topic,
            ))
        state["last_emit"] = now
        return outputs


#: The Figure 2 Puma app, verbatim, acting as the Ranker (Section 3:
#: "The example Puma app in Figure 2 contains code for the Ranker").
RANKER_PQL = """
CREATE APPLICATION top_events;

CREATE INPUT TABLE events_score(
    event_time,
    event,
    category,
    score
)
FROM SCRIBE("events_stream")
TIME event_time;

CREATE TABLE top_events_5min AS
SELECT
    category,
    event,
    topk(score) AS score
FROM
    events_score [5 minutes];
"""


class RankerApp(PumaApp):
    """Node 4: the Figure 2 app bound to the scorer's output category."""

    def __init__(self, scribe: ScribeStore, input_category: str,
                 clock: Clock | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        source = RANKER_PQL.replace("events_stream", input_category)
        super().__init__(plan(parse(source)), scribe,
                         HBaseTable("ranker_state"), clock=clock,
                         metrics=metrics)

    def top_events(self, k: int = 5,
                   window_start: float | None = None) -> list[dict[str, Any]]:
        """The consumer-service query: top K events per topic bucket."""
        return self.query_top_k("top_events_5min", "score", k, window_start)


class TrendingPipeline:
    """The assembled four-node DAG over Scribe."""

    def __init__(self, scribe: ScribeStore, dimensions: LaserTable,
                 clock: Clock | None = None, num_buckets: int = 4,
                 checkpoint_interval: float = 10.0) -> None:
        self.scribe = scribe
        self.classifier = ClassifierService()

        scribe.ensure_category("trend_input", num_buckets)
        scribe.ensure_category("trend_filtered", num_buckets)
        scribe.ensure_category("trend_joined", num_buckets)
        scribe.ensure_category("trend_scored", num_buckets)

        policy = CheckpointPolicy(interval_seconds=checkpoint_interval)
        self.filterer = StylusJob.create(
            "filterer", scribe, "trend_input",
            FiltererProcessor,
            output_category="trend_filtered", clock=clock,
            checkpoint_policy=policy,
        )
        self.joiner = StylusJob.create(
            "joiner", scribe, "trend_filtered",
            lambda: JoinerProcessor(dimensions, self.classifier),
            output_category="trend_joined", clock=clock,
            checkpoint_policy=policy,
        )
        self.scorer = StylusJob.create(
            "scorer", scribe, "trend_joined",
            ScorerProcessor,
            output_category="trend_scored", clock=clock,
            checkpoint_policy=policy,
        )
        self.ranker = RankerApp(scribe, "trend_scored", clock=clock)

        self.dag = Dag("trending")
        self.dag.add(self.filterer, reads=["trend_input"],
                     writes=["trend_filtered"])
        self.dag.add(self.joiner, reads=["trend_filtered"],
                     writes=["trend_joined"])
        self.dag.add(self.scorer, reads=["trend_joined"],
                     writes=["trend_scored"])
        self.dag.add(self.ranker, reads=["trend_scored"])

    def pump(self, max_messages: int = 10_000) -> int:
        return self.dag.pump_once(max_messages)

    def run_until_quiescent(self) -> int:
        return self.dag.run_until_quiescent()

    def checkpoint_all(self) -> None:
        """Force every Stylus node to checkpoint (flushes scorer output)."""
        self.filterer.checkpoint_now()
        self.joiner.checkpoint_now()
        self.scorer.checkpoint_now()

    def joiner_cache_hit_rate(self) -> float:
        processors = [task.processor for task in self.joiner.tasks]
        hits = sum(p.cache_hits for p in processors)
        misses = sum(p.cache_misses for p in processors)
        return hits / (hits + misses) if hits + misses else 0.0
