"""Complete applications assembled from the platform components.

These are the paper's worked examples as importable, testable code:
the Figure 3 trending-events pipeline (:mod:`repro.apps.trending`) and
the Section 5.1 Chorus pipeline (:mod:`repro.apps.chorus`). The example
scripts under ``examples/`` and several benchmarks drive these.
"""

from repro.apps.chorus import ChorusPipeline
from repro.apps.insights import MobileAnalyticsPipeline, PageInsightsPipeline
from repro.apps.trending import (
    ClassifierService,
    FiltererProcessor,
    JoinerProcessor,
    RankerApp,
    ScorerProcessor,
    TrendingPipeline,
)

__all__ = [
    "ChorusPipeline",
    "ClassifierService",
    "FiltererProcessor",
    "JoinerProcessor",
    "MobileAnalyticsPipeline",
    "PageInsightsPipeline",
    "RankerApp",
    "ScorerProcessor",
    "TrendingPipeline",
]
