"""Gap-based sessionization — the canonical stateful streaming app.

The paper's motivation for stateful processors (Section 4.5.2) is
aggregation whose answer depends on *history*, and user sessions are the
textbook case: a session is a maximal run of one user's events with no
gap longer than ``gap_seconds`` between consecutive events. Nothing in
the input marks a session boundary — the processor must remember, per
user, the session currently open and decide in retrospect that it ended.

Closing is watermark-driven, like every event-time decision in this
codebase: an open session whose last event is older than
``max_event_time - gap_seconds`` can no longer be extended (any event
that could extend it would have to be older than the watermark), so it
closes and the session record is emitted at checkpoint time. Events
arriving out of order *within* the gap simply stretch the open session
in both directions.

State is plain dicts/lists, so the full semantics lattice and crash
machinery apply unchanged.
"""

from __future__ import annotations

from typing import Any

from repro.core.event import Event
from repro.errors import ConfigError
from repro.stylus.processor import Output, StatefulProcessor


class SessionizeProcessor(StatefulProcessor):
    """Close per-user sessions after ``gap_seconds`` of event-time silence.

    Emits one record per closed session, keyed by the user: the session
    bounds, its event count, and its duration. Sessions close either
    inline (a new event from the same user lands beyond the gap) or at
    checkpoint time (the watermark passed the gap with no new event).
    """

    def __init__(self, gap_seconds: float = 30.0,
                 key_field: str = "user") -> None:
        if gap_seconds <= 0:
            raise ConfigError("gap_seconds must be > 0")
        self.gap_seconds = gap_seconds
        self.key_field = key_field

    # -- StatefulProcessor contract -----------------------------------------

    def initial_state(self) -> dict[str, Any]:
        # Open sessions are [start, last, count] triples per user.
        return {"open": {}, "max_event_time": None, "closed": 0}

    def process(self, event: Event, state: dict[str, Any]) -> list[Output]:
        user = str(event[self.key_field])
        event_time = event.event_time
        outputs: list[Output] = []
        session = state["open"].get(user)
        if session is None:
            state["open"][user] = [event_time, event_time, 1]
        elif event_time - session[1] > self.gap_seconds:
            # The gap elapsed in event time: the old session is over and
            # this event opens the next one.
            outputs.append(self._closed(user, session, state))
            state["open"][user] = [event_time, event_time, 1]
        else:
            # In or near the open session; out-of-order arrivals within
            # the gap stretch it backwards as well as forwards.
            session[0] = min(session[0], event_time)
            session[1] = max(session[1], event_time)
            session[2] += 1
        high = state["max_event_time"]
        if high is None or event_time > high:
            state["max_event_time"] = event_time
        return outputs

    def on_checkpoint(self, state: dict[str, Any],
                      now: float) -> list[Output]:
        """Close sessions the watermark can no longer extend."""
        high = state["max_event_time"]
        if high is None:
            return []
        horizon = high - self.gap_seconds
        outputs: list[Output] = []
        open_sessions = state["open"]
        for user in list(open_sessions):
            session = open_sessions[user]
            if session[1] < horizon:
                outputs.append(self._closed(user, session, state))
                del open_sessions[user]
        return outputs

    # -- helpers -------------------------------------------------------------

    def _closed(self, user: str, session: list,
                state: dict[str, Any]) -> Output:
        start, last, count = session
        state["closed"] += 1
        return Output({
            "event_time": last,
            self.key_field: user,
            "session_start": start,
            "session_end": last,
            "events": count,
            "duration": last - start,
        }, key=user)

    # -- observability --------------------------------------------------------

    @staticmethod
    def open_sessions(state: dict[str, Any]) -> int:
        return len(state["open"])

    @staticmethod
    def closed_sessions(state: dict[str, Any]) -> int:
        return state["closed"]
