"""Run Stylus processors over batch data (paper Section 4.5.2).

"When a user creates a Stylus application, two binaries are generated at
the same time: one for stream and one for batch." These functions are
the batch binaries:

- a **stateless** processor runs "in Hive as a custom mapper";
- a **general stateful** processor runs "as a custom reducer and the
  reduce key is the aggregation key plus event timestamp";
- a **monoid** processor is "optimized to do partial aggregation in the
  map phase" (a combiner).

Each takes the *same* processor object the streaming engine runs, so
stream/batch consistency is by construction, not by maintaining two
implementations (the Summingbird problem the paper calls out).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.event import Event
from repro.hive.mapreduce import MapReduceJob, run_map_reduce
from repro.stylus.processor import (
    MonoidProcessor,
    StatefulProcessor,
    StatelessProcessor,
)

Row = dict[str, Any]


def run_stateless_backfill(processor: StatelessProcessor,
                           rows: Iterable[Row],
                           time_field: str = "event_time") -> list[Row]:
    """The custom-mapper path: map each row, collect output records."""
    job = MapReduceJob(
        mapper=lambda row: [
            (None, output.record)
            for output in processor.process(Event.from_record(row, time_field))
        ],
        reducer=lambda key, values: list(values),
    )
    return run_map_reduce(job, rows)


def run_stateful_backfill(processor_factory: Callable[[], StatefulProcessor],
                          rows: Iterable[Row],
                          key_fn: Callable[[Row], Any],
                          time_field: str = "event_time") -> dict[Any, Any]:
    """The custom-reducer path: fold each key's rows, time-ordered.

    The reduce key is ``key_fn(row)`` and rows within a key are sorted by
    event time before folding — "the reduce key is the aggregation key
    plus event timestamp". Returns each key's final state.
    """
    final_states: dict[Any, Any] = {}

    def reducer(key: Any, values: list[Row]) -> Iterable[Row]:
        processor = processor_factory()
        state = processor.initial_state()
        for row in sorted(values, key=lambda r: r[time_field]):
            processor.process(Event.from_record(row, time_field), state)
        final_states[key] = state
        return []

    job = MapReduceJob(
        mapper=lambda row: [(key_fn(row), row)],
        reducer=reducer,
    )
    run_map_reduce(job, rows)
    return final_states


def run_monoid_backfill(processor: MonoidProcessor,
                        rows: Iterable[Row],
                        num_map_tasks: int = 4,
                        time_field: str = "event_time") -> dict[str, Any]:
    """The combiner path: map-side partial aggregation, then merge.

    Returns the fully merged per-key values — identical (by the monoid
    laws) to what the streaming engine leaves in its state backend.
    """
    operator = processor.merge_operator()

    def mapper(row: Row) -> Iterable[tuple[str, Any]]:
        return processor.extract(Event.from_record(row, time_field))

    def combiner(key: str, deltas: list[Any]) -> Any:
        return operator.full_merge(None, deltas)

    results: dict[str, Any] = {}

    def reducer(key: str, partials: list[Any]) -> Iterable[Row]:
        results[key] = operator.full_merge(None, partials)
        return []

    job = MapReduceJob(mapper=mapper, reducer=reducer, combiner=combiner,
                       num_map_tasks=num_map_tasks)
    run_map_reduce(job, rows)
    return results
