"""Backfill on the alternative (Spark-style) batch runtime.

The same three Stylus processor shapes as :mod:`repro.backfill.runner`,
executed on :class:`repro.batch.dataset.Dataset` instead of MapReduce.
Results must be identical (and the equivalence tests assert they are);
what differs is the execution profile — stages, shuffled records — which
:func:`compare_runtimes` reports, standing in for the paper's planned
Spark/Flink evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.batch.dataset import DatasetContext
from repro.core.event import Event
from repro.stylus.processor import (
    MonoidProcessor,
    StatefulProcessor,
    StatelessProcessor,
)

Row = dict[str, Any]


def run_stateless_backfill_dataset(processor: StatelessProcessor,
                                   rows: Iterable[Row],
                                   context: DatasetContext | None = None,
                                   time_field: str = "event_time"
                                   ) -> list[Row]:
    """Stateless processors are a pure flat_map — one narrow stage."""
    context = context or DatasetContext()
    return (
        context.parallelize(rows)
        .flat_map(lambda row: [
            output.record
            for output in processor.process(Event.from_record(row,
                                                              time_field))
        ])
        .collect()
    )


def run_monoid_backfill_dataset(processor: MonoidProcessor,
                                rows: Iterable[Row],
                                context: DatasetContext | None = None,
                                time_field: str = "event_time"
                                ) -> dict[str, Any]:
    """Monoid processors are flat_map + reduce_by_key with map-side
    combining — exactly the partial-aggregation optimization."""
    context = context or DatasetContext()
    operator = processor.merge_operator()
    return (
        context.parallelize(rows)
        .flat_map(lambda row: processor.extract(
            Event.from_record(row, time_field)))
        .reduce_by_key(operator.merge)
        .collect_as_map()
    )


def run_stateful_backfill_dataset(
        processor_factory: Callable[[], StatefulProcessor],
        rows: Iterable[Row],
        key_fn: Callable[[Row], Any],
        context: DatasetContext | None = None,
        time_field: str = "event_time") -> dict[Any, Any]:
    """General stateful processors group by key, sort by event time, and
    fold — a shuffle stage followed by a narrow fold."""
    context = context or DatasetContext()

    def fold(item: tuple[Any, list[Row]]) -> tuple[Any, Any]:
        key, group = item
        processor = processor_factory()
        state = processor.initial_state()
        for row in sorted(group, key=lambda r: r[time_field]):
            processor.process(Event.from_record(row, time_field), state)
        return key, state

    return (
        context.parallelize(rows)
        .key_by(key_fn)
        .group_by_key()
        .map(fold)
        .collect_as_map()
    )


@dataclass(frozen=True)
class RuntimeComparison:
    """Execution profile of one backfill on the dataset runtime."""

    results_equal: bool
    dataset_stages: int
    dataset_shuffled_records: int
    dataset_tasks: int


def compare_runtimes(processor: MonoidProcessor, rows: list[Row],
                     mapreduce_result: dict[str, Any]) -> RuntimeComparison:
    """Run the monoid backfill on the dataset engine and compare."""
    context = DatasetContext()
    context.stats.reset()
    dataset_result = run_monoid_backfill_dataset(processor, rows, context)
    return RuntimeComparison(
        results_equal=(dataset_result == mapreduce_result),
        dataset_stages=context.stats.stages,
        dataset_shuffled_records=context.stats.shuffled_records,
        dataset_tasks=context.stats.tasks,
    )
