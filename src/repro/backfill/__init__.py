"""Backfill: run stream-application code in the batch environment.

The paper's reprocessing decision (Section 4.5) is "develop stream
processing systems that can also run in a batch environment" — the same
application code, two runtimes. This package runs Stylus processors
(:mod:`repro.backfill.runner`) and Puma apps
(:mod:`repro.puma.hive_udf`) over Hive partitions via the MapReduce
framework, and provides the hybrid realtime/batch pipeline scheduler of
Section 5.3.

For Puma the equivalence holds at the *lowered-program* level: the Hive
path consumes the same compiled :class:`~repro.puma.compiler.ExecutablePlan`
(fused fold/project programs, monoid merge closures) that the streaming
runtime executes — pass the streaming service's ``PlanCache`` to
:func:`~repro.puma.hive_udf.run_puma_backfill` and the backfill reuses
the deployed app's cached program verbatim.
"""

from repro.backfill.hybrid import HybridPipeline, PipelineStage
from repro.backfill.runner import (
    run_monoid_backfill,
    run_stateful_backfill,
    run_stateless_backfill,
)

__all__ = [
    "HybridPipeline",
    "PipelineStage",
    "run_monoid_backfill",
    "run_stateful_backfill",
    "run_stateless_backfill",
]
