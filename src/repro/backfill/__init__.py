"""Backfill: run stream-application code in the batch environment.

The paper's reprocessing decision (Section 4.5) is "develop stream
processing systems that can also run in a batch environment" — the same
application code, two runtimes. This package runs Stylus processors
(:mod:`repro.backfill.runner`) and Puma apps
(:mod:`repro.puma.hive_udf`) over Hive partitions via the MapReduce
framework, and provides the hybrid realtime/batch pipeline scheduler of
Section 5.3.
"""

from repro.backfill.hybrid import HybridPipeline, PipelineStage
from repro.backfill.runner import (
    run_monoid_backfill,
    run_stateful_backfill,
    run_stateless_backfill,
)

__all__ = [
    "HybridPipeline",
    "PipelineStage",
    "run_monoid_backfill",
    "run_stateful_backfill",
    "run_stateless_backfill",
]
