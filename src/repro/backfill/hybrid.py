"""Hybrid realtime/batch pipelines (paper Section 5.3).

"Over half of all queries over Facebook's data warehouse Hive are part
of daily query pipelines. The pipelines can start processing anytime
after midnight. Due to dependencies, some of them complete only after 12
or more hours. We are now working on converting some of the earlier
queries in these pipelines to realtime streaming apps so that the
pipelines can complete earlier."

:class:`HybridPipeline` models such a DAG: every stage has a batch
duration and dependencies. A batch stage can start once its inputs are
done (no earlier than midnight); a stage converted to streaming computed
its result as data arrived, so it lands a small fixed latency after
midnight regardless of its batch duration. The scheduler computes
completion times for any conversion set, which is how the Section 5.3
bench measures the "available 13 hours sooner" effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class PipelineStage:
    """One query in the daily pipeline."""

    name: str
    batch_hours: float
    depends_on: tuple[str, ...] = ()
    convertible: bool = True  # some queries cannot be expressed in streaming

    def __post_init__(self) -> None:
        if self.batch_hours <= 0:
            raise ConfigError(f"stage {self.name!r} needs positive duration")


class HybridPipeline:
    """A daily pipeline DAG with per-stage batch/streaming scheduling."""

    #: A streaming-converted stage's result lands this long after midnight
    #: (the stream processor finalizes its last window and flushes).
    STREAMING_LANDING_HOURS = 0.25

    def __init__(self, stages: list[PipelineStage]) -> None:
        if not stages:
            raise ConfigError("pipeline has no stages")
        self.stages = {stage.name: stage for stage in stages}
        if len(self.stages) != len(stages):
            raise ConfigError("duplicate stage names")
        for stage in stages:
            for dep in stage.depends_on:
                if dep not in self.stages:
                    raise ConfigError(
                        f"stage {stage.name!r} depends on unknown {dep!r}"
                    )
        self._order = self._topological_order()

    def _topological_order(self) -> list[str]:
        order: list[str] = []
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(name: str) -> None:
            if name in done:
                return
            if name in visiting:
                raise ConfigError(f"dependency cycle through {name!r}")
            visiting.add(name)
            for dep in self.stages[name].depends_on:
                visit(dep)
            visiting.discard(name)
            done.add(name)
            order.append(name)

        for name in sorted(self.stages):
            visit(name)
        return order

    # -- scheduling -----------------------------------------------------------

    def completion_times(self, converted: set[str] | None = None
                         ) -> dict[str, float]:
        """Hours-after-midnight each stage's output lands.

        Stages in ``converted`` run as streaming apps. Converting a
        non-convertible stage is a configuration error.
        """
        converted = converted or set()
        for name in converted:
            if name not in self.stages:
                raise ConfigError(f"unknown stage {name!r}")
            if not self.stages[name].convertible:
                raise ConfigError(f"stage {name!r} cannot be converted")
        finish: dict[str, float] = {}
        for name in self._order:
            stage = self.stages[name]
            if name in converted:
                # Streaming apps need their *streaming-converted* inputs
                # only; they consumed the raw stream during the day. A
                # batch dependency forces waiting for it regardless.
                batch_deps = [finish[d] for d in stage.depends_on
                              if d not in converted]
                start = max([0.0] + batch_deps)
                finish[name] = max(start, self.STREAMING_LANDING_HOURS)
            else:
                start = max([0.0] + [finish[d] for d in stage.depends_on])
                finish[name] = start + stage.batch_hours
        return finish

    def pipeline_completion(self, converted: set[str] | None = None) -> float:
        """When the final output lands (hours after midnight)."""
        return max(self.completion_times(converted).values())

    def speedup_hours(self, converted: set[str]) -> float:
        """How much earlier the pipeline completes with the conversion."""
        return (self.pipeline_completion(set())
                - self.pipeline_completion(converted))

    def convertible_prefix(self) -> set[str]:
        """The "earlier queries": convertible stages all of whose
        (transitive) dependencies are also convertible."""
        result: set[str] = set()
        for name in self._order:
            stage = self.stages[name]
            if stage.convertible and all(d in result
                                         for d in stage.depends_on):
                result.add(name)
        return result
