"""Serialization of events to and from Scribe payload bytes.

Scribe carries opaque byte payloads; the processing systems serialize
events into them and deserialize on read. The paper's Figure 9 experiment
hinges on deserialization being the CPU bottleneck of the Scuba ingestion
processor, so the encoding here is deliberately a real (JSON-based) codec
whose cost scales with payload size, not a no-op.

Because deserialization dominates the hot loop, the module exposes batch
variants (:func:`encode_batch`, :func:`decode_batch`) that amortize the
per-call overhead — attribute lookups, try/except setup, type checks —
across a whole Scribe batch. The batched and per-message paths produce
byte-identical results (asserted by the property suite).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from repro.errors import ReproError

__all__ = [
    "SerdeError",
    "encode",
    "decode",
    "encode_batch",
    "decode_batch",
    "encoded_size",
]

class SerdeError(ReproError):
    """A payload could not be encoded or decoded."""


def encode(record: Mapping[str, Any]) -> bytes:
    """Serialize a flat record (a mapping of field name to value) to bytes."""
    try:
        return json.dumps(record, separators=(",", ":"), sort_keys=True,
                          default=_encode_fallback).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SerdeError(f"cannot encode record: {exc}") from exc


def decode(payload: bytes) -> dict[str, Any]:
    """Deserialize bytes produced by :func:`encode` back into a dict."""
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerdeError(f"cannot decode payload: {exc}") from exc
    if not isinstance(record, dict):
        raise SerdeError(f"payload is not a record: {type(record).__name__}")
    return record


def encode_batch(records: Iterable[Mapping[str, Any]]) -> list[bytes]:
    """Serialize many records in one pass (output matches :func:`encode`)."""
    dumps = json.dumps
    fallback = _encode_fallback
    try:
        return [
            dumps(record, separators=(",", ":"), sort_keys=True,
                  default=fallback).encode("utf-8")
            for record in records
        ]
    except (TypeError, ValueError) as exc:
        raise SerdeError(f"cannot encode record: {exc}") from exc


def decode_batch(payloads: Iterable[bytes],
                 errors: str = "strict") -> list[dict[str, Any] | None]:
    """Deserialize many payloads in one pass (output matches :func:`decode`).

    ``errors`` selects the poison-message policy: ``"strict"`` raises
    :class:`SerdeError` on the first bad payload, ``"none"`` substitutes
    ``None`` for each bad payload so a consumer can count-and-skip
    without abandoning the rest of the batch.
    """
    if errors not in ("strict", "none"):
        raise ValueError(f"unknown errors policy {errors!r}")
    payloads = list(payloads)
    # Fast path: splice the payloads into one JSON array and parse it in
    # a single C-level call, instead of paying json.loads call overhead
    # per payload. The length check guards against a payload that is
    # itself "a,b" — it would smuggle extra array elements in, and the
    # element count would no longer match the payload count.
    try:
        records = (json.loads(b"[" + b",".join(payloads) + b"]")
                   if payloads else [])
    except (TypeError, ValueError):
        records = None
    if (records is not None and len(records) == len(payloads)
            and all(type(r) is dict for r in records)):
        return records
    # Slow path: at least one payload is malformed (or not a record);
    # re-decode one at a time so the error lands on the right payload.
    result: list[dict[str, Any] | None] = []
    for payload in payloads:
        try:
            result.append(decode(payload))
        except SerdeError:
            if errors == "strict":
                raise
            result.append(None)
    return result


def encoded_size(record: Mapping[str, Any]) -> int:
    """Size in bytes of the encoded record.

    ``json.dumps`` with the default ``ensure_ascii=True`` emits pure
    ASCII, so the UTF-8 byte length equals the string length — the
    str→bytes encode (the second encode the seed paid) is skipped.
    """
    try:
        return len(json.dumps(record, separators=(",", ":"), sort_keys=True,
                              default=_encode_fallback))
    except (TypeError, ValueError) as exc:
        raise SerdeError(f"cannot encode record: {exc}") from exc


def _encode_fallback(value: Any) -> Any:
    # Tuples arrive here only inside nested structures; keep them as lists.
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"unsupported type {type(value).__name__}")
