"""Serialization of events to and from Scribe payload bytes.

Scribe carries opaque byte payloads; the processing systems serialize
events into them and deserialize on read. The paper's Figure 9 experiment
hinges on deserialization being the CPU bottleneck of the Scuba ingestion
processor, so the encoding here is deliberately a real (JSON-based) codec
whose cost scales with payload size, not a no-op.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import ReproError

__all__ = ["SerdeError", "encode", "decode", "encoded_size"]


class SerdeError(ReproError):
    """A payload could not be encoded or decoded."""


def encode(record: Mapping[str, Any]) -> bytes:
    """Serialize a flat record (a mapping of field name to value) to bytes."""
    try:
        return json.dumps(record, separators=(",", ":"), sort_keys=True,
                          default=_encode_fallback).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SerdeError(f"cannot encode record: {exc}") from exc


def decode(payload: bytes) -> dict[str, Any]:
    """Deserialize bytes produced by :func:`encode` back into a dict."""
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerdeError(f"cannot decode payload: {exc}") from exc
    if not isinstance(record, dict):
        raise SerdeError(f"payload is not a record: {type(record).__name__}")
    return record


def encoded_size(record: Mapping[str, Any]) -> int:
    """Size in bytes of the encoded record."""
    return len(encode(record))


def _encode_fallback(value: Any) -> Any:
    # Tuples arrive here only inside nested structures; keep them as lists.
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"unsupported type {type(value).__name__}")
