"""A Spark-style lazy, partitioned dataset engine.

Transformations build a lineage graph; nothing executes until an action
(``collect`` and friends). The executor splits lineage into **stages**
at wide (shuffle) dependencies — the narrow/wide distinction the paper
cites from the RDD work [31] when discussing data transfer — and fuses
narrow chains so each partition is traversed once per stage. Execution
statistics (stages, shuffled records) land in the context so backfill
comparisons can report them.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import ConfigError


@dataclass
class ExecutionStats:
    """What an action cost: stages run and records shuffled."""

    stages: int = 0
    shuffled_records: int = 0
    tasks: int = 0

    def reset(self) -> None:
        self.stages = 0
        self.shuffled_records = 0
        self.tasks = 0


class DatasetContext:
    """Factory and executor state (the 'session')."""

    def __init__(self, default_partitions: int = 4) -> None:
        if default_partitions < 1:
            raise ConfigError("default_partitions must be >= 1")
        self.default_partitions = default_partitions
        self.stats = ExecutionStats()

    def parallelize(self, rows: Iterable[Any],
                    num_partitions: int | None = None) -> "Dataset":
        rows = list(rows)
        if not rows:
            return Dataset(self, _Source([[]]))
        parts = max(1, min(num_partitions or self.default_partitions,
                           len(rows)))
        size = (len(rows) + parts - 1) // parts
        partitions = [rows[i:i + size] for i in range(0, len(rows), size)]
        return Dataset(self, _Source(partitions))


# -- lineage nodes -------------------------------------------------------------


@dataclass(frozen=True)
class _Source:
    partitions: list


@dataclass(frozen=True)
class _Narrow:
    parent: Any
    transform: Callable[[list], list]  # whole-partition function


@dataclass(frozen=True)
class _Shuffle:
    parent: Any
    key_fn: Callable[[Any], Any]
    num_partitions: int
    combine: Callable[[Any, Any], Any] | None  # map-side combiner


def _hash_partition(key: Any, parts: int) -> int:
    return zlib.crc32(repr(key).encode("utf-8")) % parts


class Dataset:
    """A lazy, immutable, partitioned collection."""

    def __init__(self, context: DatasetContext, plan: Any) -> None:
        self.context = context
        self._plan = plan

    # -- narrow transformations -------------------------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "Dataset":
        return self.map_partitions(lambda part: [fn(x) for x in part])

    def filter(self, predicate: Callable[[Any], bool]) -> "Dataset":
        return self.map_partitions(
            lambda part: [x for x in part if predicate(x)]
        )

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "Dataset":
        return self.map_partitions(
            lambda part: [y for x in part for y in fn(x)]
        )

    def map_partitions(self, fn: Callable[[list], list]) -> "Dataset":
        return Dataset(self.context, _Narrow(self._plan, fn))

    # -- wide transformations ------------------------------------------------------

    def group_by_key(self, num_partitions: int | None = None) -> "Dataset":
        """(k, v) pairs -> (k, [v, ...]); a full shuffle."""
        shuffled = Dataset(self.context, _Shuffle(
            self._plan, key_fn=lambda kv: kv[0],
            num_partitions=num_partitions or self.context.default_partitions,
            combine=None,
        ))
        return shuffled.map_partitions(_group_partition)

    def reduce_by_key(self, fn: Callable[[Any, Any], Any],
                      num_partitions: int | None = None) -> "Dataset":
        """(k, v) pairs -> (k, fold(v)); combines map-side before the
        shuffle (the monoid optimization)."""
        shuffled = Dataset(self.context, _Shuffle(
            self._plan, key_fn=lambda kv: kv[0],
            num_partitions=num_partitions or self.context.default_partitions,
            combine=fn,
        ))
        return shuffled.map_partitions(
            lambda part: _reduce_partition(part, fn)
        )

    def key_by(self, key_fn: Callable[[Any], Any]) -> "Dataset":
        return self.map(lambda x: (key_fn(x), x))

    # -- actions ---------------------------------------------------------------------

    def collect(self) -> list:
        partitions = self._execute()
        return [x for part in partitions for x in part]

    def collect_as_map(self) -> dict:
        return dict(self.collect())

    def count(self) -> int:
        return len(self.collect())

    def take(self, n: int) -> list:
        return self.collect()[:n]

    # -- execution ---------------------------------------------------------------------

    def _execute(self) -> list[list]:
        return _evaluate(self._plan, self.context.stats)


def _group_partition(part: list) -> list:
    grouped: dict[Any, list] = {}
    for key, value in part:
        grouped.setdefault(key, []).append(value)
    return sorted(grouped.items(), key=lambda kv: repr(kv[0]))


def _reduce_partition(part: list, fn: Callable[[Any, Any], Any]) -> list:
    folded: dict[Any, Any] = {}
    for key, value in part:
        folded[key] = fn(folded[key], value) if key in folded else value
    return sorted(folded.items(), key=lambda kv: repr(kv[0]))


def _evaluate(plan: Any, stats: ExecutionStats) -> list[list]:
    """Evaluate lineage bottom-up, fusing narrow chains into one stage."""
    if isinstance(plan, _Source):
        stats.stages += 1
        stats.tasks += len(plan.partitions)
        return [list(part) for part in plan.partitions]

    if isinstance(plan, _Narrow):
        # Fuse: collect the narrow chain down to the nearest stage boundary.
        transforms: list[Callable[[list], list]] = []
        node = plan
        while isinstance(node, _Narrow):
            transforms.append(node.transform)
            node = node.parent
        parents = _evaluate(node, stats)
        stats.tasks += len(parents)
        result = []
        for part in parents:
            for transform in reversed(transforms):
                part = transform(part)
            result.append(part)
        return result

    if isinstance(plan, _Shuffle):
        parents = _evaluate(plan.parent, stats)
        stats.stages += 1
        buckets: list[dict[Any, Any] | list] = [
            [] for _ in range(plan.num_partitions)
        ]
        if plan.combine is not None:
            # Map-side combine: fold within each upstream partition first.
            for part in parents:
                local: dict[Any, Any] = {}
                for key, value in part:
                    local[key] = (plan.combine(local[key], value)
                                  if key in local else value)
                for key, value in local.items():
                    index = _hash_partition(key, plan.num_partitions)
                    buckets[index].append((key, value))
                    stats.shuffled_records += 1
        else:
            for part in parents:
                for item in part:
                    key = plan.key_fn(item)
                    index = _hash_partition(key, plan.num_partitions)
                    buckets[index].append(item)
                    stats.shuffled_records += 1
        stats.tasks += plan.num_partitions
        return [list(bucket) for bucket in buckets]

    raise ConfigError(f"unknown plan node {type(plan).__name__}")
