"""An alternative batch runtime for backfill (paper Section 7).

"We are also considering alternate runtime environments for running
stream processing backfill jobs. Today, they run in Hive. We plan to
evaluate Spark and Flink." This package is that evaluation substrate: a
Spark-style **dataset engine** — lazy, lineage-based, partitioned
transformations with narrow/wide dependencies and shuffle stages — plus
backfill runners that execute the *same* Stylus processors on it, so the
two batch runtimes can be compared like-for-like
(:mod:`repro.backfill.alt_runner`).
"""

from repro.batch.dataset import Dataset, DatasetContext

__all__ = ["Dataset", "DatasetContext"]
