"""Processing-lag monitoring and alerting (paper Section 6.4).

Anything exposing ``lag_messages()`` (every engine and ingestion tier in
this library) can be registered. The monitor samples lag on a schedule,
keeps a short history, and raises/clears alerts with hysteresis so a
briefly bursty stream does not flap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import ConfigError
from repro.runtime.clock import Clock, WallClock
from repro.runtime.scheduler import EventHandle, Scheduler


class LagSource(Protocol):
    """Any consumer that can report how far behind its input it is."""

    name: str

    def lag_messages(self) -> int: ...


@dataclass(frozen=True)
class LagAlert:
    """One raised alert: which consumer, how far behind, when."""

    consumer: str
    lag: int
    at: float


@dataclass
class _Watch:
    source: LagSource
    threshold: int
    alerting: bool = False
    history: list[tuple[float, int]] = field(default_factory=list)


class LagMonitor:
    """Samples registered consumers and manages alert state."""

    #: Alerts clear only once lag falls below threshold * this factor.
    CLEAR_FRACTION = 0.5
    HISTORY_LIMIT = 1000

    def __init__(self, clock: Clock | None = None,
                 default_threshold: int = 1000) -> None:
        if default_threshold < 1:
            raise ConfigError("threshold must be >= 1")
        self.clock = clock if clock is not None else WallClock()
        self.default_threshold = default_threshold
        self._watches: dict[str, _Watch] = {}
        self.alerts_raised: list[LagAlert] = []

    def watch(self, source: LagSource, threshold: int | None = None) -> None:
        self._watches[source.name] = _Watch(
            source, threshold if threshold is not None
            else self.default_threshold,
        )

    def unwatch(self, name: str) -> None:
        self._watches.pop(name, None)

    # -- sampling -----------------------------------------------------------------

    def sample(self) -> list[LagAlert]:
        """Take one lag sample of every watch; return newly raised alerts."""
        now = self.clock.now()
        new_alerts: list[LagAlert] = []
        for watch in self._watches.values():
            lag = watch.source.lag_messages()
            watch.history.append((now, lag))
            if len(watch.history) > self.HISTORY_LIMIT:
                del watch.history[:-self.HISTORY_LIMIT]
            if not watch.alerting and lag > watch.threshold:
                watch.alerting = True
                alert = LagAlert(watch.source.name, lag, now)
                self.alerts_raised.append(alert)
                new_alerts.append(alert)
            elif (watch.alerting
                  and lag < watch.threshold * self.CLEAR_FRACTION):
                watch.alerting = False
        return new_alerts

    def schedule_on(self, scheduler: Scheduler,
                    interval: float = 60.0) -> EventHandle:
        """Sample periodically from a simulation scheduler."""
        return scheduler.every(interval, self.sample)

    # -- reporting ------------------------------------------------------------------

    def active_alerts(self) -> list[str]:
        return sorted(
            name for name, watch in self._watches.items() if watch.alerting
        )

    def current_lags(self) -> dict[str, int]:
        return {
            name: watch.history[-1][1] if watch.history else 0
            for name, watch in self._watches.items()
        }

    def lag_history(self, name: str) -> list[tuple[float, int]]:
        if name not in self._watches:
            raise ConfigError(f"not watching {name!r}")
        return list(self._watches[name].history)
