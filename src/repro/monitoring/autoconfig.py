"""Auto-configured monitoring for deployed apps.

Section 6.4: "In the future, we would like to provide dashboards and
alerts that are automatically configured to monitor both Puma and Stylus
apps for the teams that use them." Given any set of lag sources (Puma
apps, Stylus jobs, Swift apps, ingestion tiers — anything with a
``name`` and ``lag_messages()``), :func:`auto_monitor` wires up the lag
monitor with per-app alerts and a dashboard with one lag-history panel
per app, in one call.
"""

from __future__ import annotations

from typing import Iterable

from repro.monitoring.dashboards import Dashboard, DashboardPanel
from repro.monitoring.lag import LagMonitor, LagSource
from repro.runtime.clock import Clock


def auto_monitor(sources: Iterable[LagSource], clock: Clock,
                 lag_threshold: int = 10_000,
                 dashboard_window_seconds: float = 3_600.0
                 ) -> tuple[LagMonitor, Dashboard]:
    """Build a fully wired (monitor, dashboard) pair for ``sources``."""
    monitor = LagMonitor(clock=clock, default_threshold=lag_threshold)
    dashboard = Dashboard("stream-apps", dashboard_window_seconds,
                          clock=clock)
    for source in sources:
        monitor.watch(source)
        dashboard.add_panel(_lag_panel(monitor, source.name))
    return monitor, dashboard


def _lag_panel(monitor: LagMonitor, app_name: str) -> DashboardPanel:
    def run(start: float, end: float) -> list[dict]:
        # Inclusive of ``end``: a sample taken at the refresh instant
        # belongs on the chart being refreshed.
        return [
            {"t": at, "lag": lag}
            for at, lag in monitor.lag_history(app_name)
            if start <= at <= end
        ]

    return DashboardPanel(f"lag:{app_name}", run, backend="monitor")
