"""Operational monitoring (paper Sections 6.3 and 6.4).

"It is sufficient to set up monitoring and alerts for delays in
processing streams from the persistent store" — because every consumer's
primary responsibility is draining its input, *processing lag* is the
one signal that matters. This package provides the lag monitor/alerting
used by all engines and the dashboard-query framework of Section 5.2.
"""

from repro.monitoring.dashboards import Dashboard, DashboardPanel
from repro.monitoring.lag import LagAlert, LagMonitor

__all__ = ["Dashboard", "DashboardPanel", "LagAlert", "LagMonitor"]
