"""The dashboard framework of Section 5.2.

Dashboards "run the same queries repeatedly, over a sliding time
window. Once the query is embedded in a dashboard, the aggregations and
metrics are fixed." A :class:`DashboardPanel` holds either a Scuba query
(read-time aggregation) or a Puma app table (write-time aggregation);
refreshing the dashboard re-runs every panel over the slid window. The
framework also tracks per-panel usage so "dead dashboard queries" can be
detected and retired — the third migration challenge the paper lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigError
from repro.puma.app import PumaApp
from repro.runtime.clock import Clock, WallClock
from repro.runtime.metrics import MetricsRegistry
from repro.scuba.ingest import ScubaIngester
from repro.scuba.query import ScubaQuery

Row = dict[str, Any]

PanelRunner = Callable[[float, float], list[Row]]


@dataclass
class DashboardPanel:
    """One chart: a named query runnable over any time window."""

    name: str
    runner: PanelRunner
    backend: str  # "scuba" | "puma"
    last_viewed_at: float = 0.0
    refresh_count: int = 0

    @classmethod
    def from_scuba(cls, name: str, query: ScubaQuery) -> "DashboardPanel":
        def run(start: float, end: float) -> list[Row]:
            shifted = query.shifted(start - query.start)
            return shifted.run()

        return cls(name, run, backend="scuba")

    @classmethod
    def from_puma(cls, name: str, app: PumaApp, table: str,
                  metric: str, limit: int = 7) -> "DashboardPanel":
        """Serve the panel from Puma's pre-computed windows.

        Reads the aggregation windows overlapping [start, end) and
        combines them — no raw-row scanning.
        """
        def run(start: float, end: float) -> list[Row]:
            rows: list[Row] = []
            for window_start in app.windows(table):
                if start <= window_start < end:
                    rows.extend(app.query_top_k(table, metric, limit,
                                                window_start))
            rows.sort(key=lambda r: (
                -(r[metric][0] if isinstance(r[metric], list) and r[metric]
                  else r[metric] if not isinstance(r[metric], list) else 0)
            ,))
            return rows[:limit]

        return cls(name, run, backend="puma")

    @classmethod
    def from_query_stats(cls, name: str,
                         query: ScubaQuery) -> "DashboardPanel":
        """Plot what the query engine *spends* beside what it answers.

        Surfaces the per-table cost counters a query charges as it
        runs — ``rows_scanned``, ``rows_cached``, the partial-cache
        ``cache.hits``/``cache.misses``, and the compiled engine's
        ``plan_cache.hits``/``plan_cache.misses`` and
        ``segments_pruned``/``rows_pruned`` — so an operator can see
        whether a dashboard is being served by cached partials and
        zone-map pruning or by raw scans.
        """
        def run(start: float, end: float) -> list[Row]:
            prefix = f"scuba.{query.table.name}."
            snapshot = query.metrics.find(prefix)
            return [{"metric": key[len(prefix):], "value": value}
                    for key, value in sorted(snapshot.items())]

        return cls(name, run, backend="scuba_stats")

    @classmethod
    def from_ingester(cls, name: str,
                      ingester: ScubaIngester) -> "DashboardPanel":
        """Plot ingestion health next to query cost.

        Surfaces the ingester's lag gauge and rows/sec throughput so an
        operator sees "is the data current?" beside every query panel —
        a Scuba query over a lagging table is answering about the past.
        """
        def run(start: float, end: float) -> list[Row]:
            snapshot = ingester.metrics.find(f"{ingester.name}.")
            prefix_len = len(ingester.name) + 1
            rows = [{"metric": key[prefix_len:], "value": value}
                    for key, value in sorted(snapshot.items())]
            rows.append({"metric": "lag_messages",
                         "value": float(ingester.lag_messages())})
            return rows

        return cls(name, run, backend="ingest")


class Dashboard:
    """A set of panels refreshed together over a sliding window."""

    def __init__(self, name: str, window_seconds: float,
                 clock: Clock | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if window_seconds <= 0:
            raise ConfigError("window must be positive")
        self.name = name
        self.window_seconds = window_seconds
        self.clock = clock if clock is not None else WallClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._refresh_counter = self.metrics.counter(
            f"dashboard.{name}.refreshes")
        self._served_counter = self.metrics.counter(
            f"dashboard.{name}.rows_served")
        self._panels: dict[str, DashboardPanel] = {}

    def add_panel(self, panel: DashboardPanel) -> None:
        if panel.name in self._panels:
            raise ConfigError(f"panel {panel.name!r} already exists")
        self._panels[panel.name] = panel

    def panels(self) -> list[DashboardPanel]:
        return list(self._panels.values())

    def refresh(self) -> dict[str, list[Row]]:
        """Re-run every panel over the current sliding window."""
        now = self.clock.now()
        start = now - self.window_seconds
        results = {}
        for panel in self._panels.values():
            results[panel.name] = panel.runner(start, now)
            panel.refresh_count += 1
            self._served_counter.increment(len(results[panel.name]))
        self._refresh_counter.increment()
        return results

    def view(self, panel_name: str) -> None:
        """Record a human looking at a panel (dead-query detection)."""
        if panel_name not in self._panels:
            raise ConfigError(f"no panel named {panel_name!r}")
        self._panels[panel_name].last_viewed_at = self.clock.now()

    def dead_panels(self, idle_seconds: float) -> list[str]:
        """Panels nobody has viewed recently — candidates for deletion."""
        now = self.clock.now()
        return sorted(
            panel.name for panel in self._panels.values()
            if now - panel.last_viewed_at > idle_seconds
        )
