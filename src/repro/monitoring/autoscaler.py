"""Automatic scaling of stream apps from their processing lag.

Two of the paper's wishes, combined (Section 6.4): "guessing the right
amount of parallelism before deployment is a black art. We save both
time and machine resources by being able to change it easily; we can get
started with some initial level and then adapt quickly" and "We would
also like to scale the apps automatically."

The autoscaler samples each watched app's processing lag. Sustained lag
above the high-water mark doubles the app's Scribe bucket count (the
paper's scaling lever) and asks the job to grow into the new buckets;
sustained zero lag records a scale-down recommendation (bucket counts
cannot shrink in place — as in Scribe, shrinking means redeploying — so
the recommendation is surfaced rather than applied).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.errors import ConfigError
from repro.runtime.clock import Clock, WallClock
from repro.scribe.store import ScribeStore


class ScalableJob(Protocol):
    """A job the autoscaler can manage."""

    name: str

    def lag_messages(self) -> int: ...

    def input_category(self) -> str: ...

    def grow_to_buckets(self) -> int:
        """Create tasks for any new buckets; return the task count."""
        ...


@dataclass(frozen=True)
class ScalingAction:
    """One decision the autoscaler took (or recommends)."""

    job: str
    kind: str  # "scale_up" | "recommend_scale_down"
    at: float
    old_buckets: int
    new_buckets: int


@dataclass
class _Watch:
    job: ScalableJob
    high_lag_samples: int = 0
    idle_samples: int = 0
    last_action_at: float = float("-inf")


class AutoScaler:
    """Lag-driven bucket scaling with hysteresis and a cooldown."""

    def __init__(self, scribe: ScribeStore,
                 clock: Clock | None = None,
                 high_lag: int = 10_000,
                 sustain_samples: int = 3,
                 idle_samples_for_downscale: int = 10,
                 cooldown_seconds: float = 300.0,
                 max_buckets: int = 64) -> None:
        if high_lag < 1 or sustain_samples < 1 or max_buckets < 1:
            raise ConfigError("invalid autoscaler thresholds")
        self.scribe = scribe
        self.clock = clock if clock is not None else WallClock()
        self.high_lag = high_lag
        self.sustain_samples = sustain_samples
        self.idle_samples_for_downscale = idle_samples_for_downscale
        self.cooldown_seconds = cooldown_seconds
        self.max_buckets = max_buckets
        self._watches: dict[str, _Watch] = {}
        self.actions: list[ScalingAction] = []

    def watch(self, job: ScalableJob) -> None:
        self._watches[job.name] = _Watch(job)

    def sample(self) -> list[ScalingAction]:
        """Take one lag sample of every watched job; apply scale-ups."""
        now = self.clock.now()
        taken: list[ScalingAction] = []
        for watch in self._watches.values():
            lag = watch.job.lag_messages()
            if lag > self.high_lag:
                watch.high_lag_samples += 1
                watch.idle_samples = 0
            elif lag == 0:
                watch.idle_samples += 1
                watch.high_lag_samples = 0
            else:
                watch.high_lag_samples = 0
                watch.idle_samples = 0

            if now - watch.last_action_at < self.cooldown_seconds:
                continue

            if watch.high_lag_samples >= self.sustain_samples:
                action = self._scale_up(watch, now)
                if action is not None:
                    taken.append(action)
            elif watch.idle_samples >= self.idle_samples_for_downscale:
                action = self._recommend_down(watch, now)
                if action is not None:
                    taken.append(action)
        return taken

    def _scale_up(self, watch: _Watch, now: float) -> ScalingAction | None:
        category = self.scribe.category(watch.job.input_category())
        old = category.num_buckets
        if old >= self.max_buckets:
            return None
        new = min(old * 2, self.max_buckets)
        category.resize(new)
        watch.job.grow_to_buckets()
        watch.high_lag_samples = 0
        watch.last_action_at = now
        action = ScalingAction(watch.job.name, "scale_up", now, old, new)
        self.actions.append(action)
        return action

    def _recommend_down(self, watch: _Watch, now: float) -> ScalingAction | None:
        category = self.scribe.category(watch.job.input_category())
        old = category.num_buckets
        if old <= 1:
            return None
        watch.idle_samples = 0
        # A recommendation changes nothing, so it must not start the
        # cooldown — otherwise an idle job that suddenly spikes has its
        # real scale-up blocked for cooldown_seconds by a no-op.
        action = ScalingAction(watch.job.name, "recommend_scale_down", now,
                               old, max(1, old // 2))
        self.actions.append(action)
        return action

    def recommendations(self) -> list[ScalingAction]:
        return [a for a in self.actions if a.kind == "recommend_scale_down"]
