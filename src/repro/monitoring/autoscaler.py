"""Automatic scaling of stream apps from their processing lag.

Two of the paper's wishes, combined (Section 6.4): "guessing the right
amount of parallelism before deployment is a black art. We save both
time and machine resources by being able to change it easily; we can get
started with some initial level and then adapt quickly" and "We would
also like to scale the apps automatically."

The autoscaler samples each watched app's processing lag. Two modes:

- **Bucket mode** (no topology): sustained lag above the high-water mark
  doubles the app's Scribe bucket count (the paper's scaling lever) and
  asks the job to grow into the new buckets; sustained zero lag records
  a scale-down *recommendation* (bucket counts cannot shrink in place —
  as in Scribe, shrinking means redeploying — so the recommendation is
  surfaced rather than applied).
- **Topology mode** (watched with a
  :class:`~repro.runtime.topology.ShardedTopology`): the same hysteresis
  drives the *shard count* instead — sustained lag splits (doubling
  shards, capped at the bucket count), sustained idleness actually
  merges (halving shards). Both are applied live through the topology's
  pause/transfer/resume rebalance. A decision that lands while a
  rebalance is already in flight is **deferred, not dropped**: it is
  counted in ``autoscaler.deferred`` and applied on the first sample
  after the topology is free — *if* the lag it was decided on still
  warrants it. A deferred split whose lag has since drained (or a
  deferred merge whose input picked back up) is discarded and counted
  in ``autoscaler.deferred_stale`` instead of being applied blindly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.errors import ConfigError
from repro.runtime.clock import Clock, WallClock
from repro.runtime.metrics import MetricsRegistry
from repro.scribe.store import ScribeStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.topology import ShardedTopology


class ScalableJob(Protocol):
    """A job the autoscaler can manage."""

    name: str

    def lag_messages(self) -> int: ...

    def input_category(self) -> str: ...

    def grow_to_buckets(self) -> int:
        """Create tasks for any new buckets; return the task count."""
        ...


@dataclass(frozen=True)
class ScalingAction:
    """One decision the autoscaler took (or recommends).

    In topology mode ``old_buckets``/``new_buckets`` carry the shard
    counts (the thing being scaled); the Scribe bucket count is fixed.
    """

    job: str
    kind: str  # "scale_up" | "scale_down" | "recommend_scale_down"
    at: float
    old_buckets: int
    new_buckets: int


@dataclass
class _Watch:
    job: ScalableJob
    topology: "ShardedTopology | None" = None
    high_lag_samples: int = 0
    idle_samples: int = 0
    last_action_at: float = field(default=float("-inf"))
    deferred_kind: str | None = None


class AutoScaler:
    """Lag-driven bucket/shard scaling with hysteresis and a cooldown."""

    def __init__(self, scribe: ScribeStore,
                 clock: Clock | None = None,
                 high_lag: int = 10_000,
                 sustain_samples: int = 3,
                 idle_samples_for_downscale: int = 10,
                 cooldown_seconds: float = 300.0,
                 max_buckets: int = 64,
                 metrics: MetricsRegistry | None = None) -> None:
        if high_lag < 1 or sustain_samples < 1 or max_buckets < 1:
            raise ConfigError("invalid autoscaler thresholds")
        self.scribe = scribe
        self.clock = clock if clock is not None else WallClock()
        self.high_lag = high_lag
        self.sustain_samples = sustain_samples
        self.idle_samples_for_downscale = idle_samples_for_downscale
        self.cooldown_seconds = cooldown_seconds
        self.max_buckets = max_buckets
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._deferred_counter = self.metrics.counter("autoscaler.deferred")
        self._stale_counter = self.metrics.counter("autoscaler.deferred_stale")
        self._watches: dict[str, _Watch] = {}
        self.actions: list[ScalingAction] = []

    def watch(self, job: ScalableJob,
              topology: "ShardedTopology | None" = None) -> None:
        """Watch ``job``; with ``topology``, decisions drive its shard
        count (a topology watches itself: ``watch(topo, topology=topo)``)."""
        self._watches[job.name] = _Watch(job, topology)

    def sample(self) -> list[ScalingAction]:
        """Take one lag sample of every watched job; apply what's due."""
        now = self.clock.now()
        taken: list[ScalingAction] = []
        for watch in self._watches.values():
            # A decision deferred by an in-flight rebalance applies as
            # soon as the topology is free — before this sample's lag
            # reading, so the deferral never starves behind fresh input.
            # But it was made on pre-rebalance lag: if the condition that
            # justified it no longer holds (the handoff itself, or the
            # interim pumping, absorbed the pressure), applying it now
            # would thrash — split an already-drained topology or merge
            # one that is busy again. Stale decisions are discarded and
            # counted instead.
            if (watch.deferred_kind is not None and watch.topology is not None
                    and not watch.topology.rebalancing):
                kind, watch.deferred_kind = watch.deferred_kind, None
                lag_now = watch.job.lag_messages()
                stale = (lag_now <= self.high_lag if kind == "scale_up"
                         else lag_now > 0)
                if stale:
                    self._stale_counter.increment()
                else:
                    action = self._apply_topology(watch, kind, now)
                    if action is not None:
                        taken.append(action)

            lag = watch.job.lag_messages()
            if lag > self.high_lag:
                watch.high_lag_samples += 1
                watch.idle_samples = 0
            elif lag == 0:
                watch.idle_samples += 1
                watch.high_lag_samples = 0
            else:
                watch.high_lag_samples = 0
                watch.idle_samples = 0

            if now - watch.last_action_at < self.cooldown_seconds:
                continue

            if watch.high_lag_samples >= self.sustain_samples:
                if watch.topology is not None:
                    action = self._decide_topology(watch, "scale_up", now)
                else:
                    action = self._scale_up(watch, now)
                if action is not None:
                    taken.append(action)
            elif watch.idle_samples >= self.idle_samples_for_downscale:
                if watch.topology is not None:
                    action = self._decide_topology(watch, "scale_down", now)
                else:
                    action = self._recommend_down(watch, now)
                if action is not None:
                    taken.append(action)
        return taken

    # -- topology mode -------------------------------------------------------

    def _decide_topology(self, watch: _Watch, kind: str,
                         now: float) -> ScalingAction | None:
        topology = watch.topology
        if topology.rebalancing:
            # Mid-rebalance (e.g. this sample fired from a scheduler
            # callback inside a long handoff): park the decision instead
            # of dropping it on the floor.
            self._deferred_counter.increment()
            watch.deferred_kind = kind
            watch.high_lag_samples = 0
            watch.idle_samples = 0
            return None
        return self._apply_topology(watch, kind, now)

    def _apply_topology(self, watch: _Watch, kind: str,
                        now: float) -> ScalingAction | None:
        topology = watch.topology
        old = topology.num_shards
        if kind == "scale_up":
            new = min(old * 2, topology.num_buckets)
        else:
            new = max(1, old // 2)
        if new == old:
            return None
        topology.rebalance(new)
        watch.high_lag_samples = 0
        watch.idle_samples = 0
        watch.last_action_at = now
        action = ScalingAction(watch.job.name, kind, now, old, new)
        self.actions.append(action)
        return action

    # -- bucket mode ---------------------------------------------------------

    def _scale_up(self, watch: _Watch, now: float) -> ScalingAction | None:
        category = self.scribe.category(watch.job.input_category())
        old = category.num_buckets
        if old >= self.max_buckets:
            return None
        new = min(old * 2, self.max_buckets)
        category.resize(new)
        watch.job.grow_to_buckets()
        watch.high_lag_samples = 0
        watch.last_action_at = now
        action = ScalingAction(watch.job.name, "scale_up", now, old, new)
        self.actions.append(action)
        return action

    def _recommend_down(self, watch: _Watch, now: float) -> ScalingAction | None:
        category = self.scribe.category(watch.job.input_category())
        old = category.num_buckets
        if old <= 1:
            return None
        watch.idle_samples = 0
        # A recommendation changes nothing, so it must not start the
        # cooldown — otherwise an idle job that suddenly spikes has its
        # real scale-up blocked for cooldown_seconds by a no-op.
        action = ScalingAction(watch.job.name, "recommend_scale_down", now,
                               old, max(1, old // 2))
        self.actions.append(action)
        return action

    def recommendations(self) -> list[ScalingAction]:
        return [a for a in self.actions if a.kind == "recommend_scale_down"]
