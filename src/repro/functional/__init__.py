"""A functional stream-processing paradigm on top of Stylus.

Section 4.1 lays out three language paradigms — declarative (Puma's
SQL), procedural (Stylus), and **functional** ("a sequence of predefined
operators", the Spark Streaming / Flink style the paper says Facebook
was exploring). This package provides that third paradigm: a chain of
``map`` / ``filter`` / ``flat_map`` / ``key_by`` / windowed-aggregate
operators that *compiles onto the Stylus engine* over Scribe.

Consecutive narrow operators fuse into a single Stylus node (the paper's
Section 4.2.1: narrow one-to-one connections "can be collapsed");
``key_by`` introduces a stage boundary — a re-sharded intermediate
Scribe category — exactly like a wide dependency.
"""

from repro.functional.streams import FunctionalPipeline, StreamBuilder

__all__ = ["FunctionalPipeline", "StreamBuilder"]
