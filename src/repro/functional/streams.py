"""The functional operator chain and its compilation to Stylus.

Example::

    pipeline = (StreamBuilder(scribe, clock=clock)
                .source("events")
                .filter(lambda r: r["event_type"] == "post")
                .map(lambda r: {**r, "topic": classify(r["text"])})
                .key_by(lambda r: r["topic"])
                .window_aggregate(300.0, CounterMergeOperator(),
                                  lambda r: 1)
                .to("topic_counts")
                .build("trending"))
    pipeline.run_until_quiescent()

Operators before a ``key_by`` fuse into one stateless Stylus node; each
``key_by`` starts a new stage fed by an intermediate Scribe category
sharded on the key; ``window_aggregate`` terminates a keyed stage with a
watermark-closed :class:`~repro.stylus.windowed.WindowedAggregator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.dag import Dag
from repro.core.event import Event
from repro.errors import ConfigError
from repro.runtime.clock import Clock
from repro.scribe.store import ScribeStore
from repro.storage.merge import MergeOperator
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusJob
from repro.stylus.processor import Output, StatelessProcessor
from repro.stylus.windowed import WindowedAggregator

Record = dict[str, Any]


@dataclass(frozen=True)
class _Op:
    kind: str  # "map" | "filter" | "flat_map"
    fn: Callable


class _FusedStateless(StatelessProcessor):
    """A chain of narrow operators executed in one process."""

    def __init__(self, ops: list[_Op],
                 key_fn: Callable[[Record], str] | None) -> None:
        self.ops = ops
        self.key_fn = key_fn

    def process(self, event: Event) -> list[Output]:
        records: list[Record] = [event.to_record()]
        for op in self.ops:
            if op.kind == "map":
                records = [self._keep_time(op.fn(r), r) for r in records]
            elif op.kind == "filter":
                records = [r for r in records if op.fn(r)]
            else:  # flat_map
                records = [self._keep_time(out, r)
                           for r in records for out in op.fn(r)]
        key_fn = self.key_fn
        return [
            Output(record,
                   key=str(key_fn(record)) if key_fn is not None else None)
            for record in records
        ]

    @staticmethod
    def _keep_time(record: Record, source: Record) -> Record:
        if "event_time" not in record:
            record = dict(record)
            record["event_time"] = source["event_time"]
        return record


@dataclass
class _Stage:
    """One compiled stage: fused narrow ops, then an optional terminal."""

    ops: list[_Op] = field(default_factory=list)
    key_fn: Callable[[Record], str] | None = None
    # (window_seconds, operator, value_fn, confidence)
    window: tuple[float, MergeOperator, Callable[[Record], Any],
                  float] | None = None


class FunctionalPipeline:
    """The built artifact: a DAG of Stylus jobs over Scribe."""

    def __init__(self, name: str, dag: Dag, jobs: list[StylusJob],
                 output_category: str | None) -> None:
        self.name = name
        self.dag = dag
        self.jobs = jobs
        self.output_category = output_category

    def pump(self, max_messages: int = 10_000) -> int:
        return self.dag.pump_once(max_messages)

    def run_until_quiescent(self) -> int:
        return self.dag.run_until_quiescent()

    def checkpoint_all(self) -> None:
        for job in self.jobs:
            job.checkpoint_now()

    def lag_messages(self) -> int:
        return sum(job.lag_messages() for job in self.jobs)


class StreamBuilder:
    """Entry point: binds a Scribe deployment and builds streams."""

    def __init__(self, scribe: ScribeStore, clock: Clock | None = None,
                 num_buckets: int = 4,
                 checkpoint_every_events: int = 200) -> None:
        self.scribe = scribe
        self.clock = clock
        self.num_buckets = num_buckets
        self.checkpoint_policy = CheckpointPolicy(
            every_n_events=checkpoint_every_events)

    def source(self, category: str) -> "FStream":
        # An existing category (say, an upstream job's output) is attached
        # as-is; the builder's num_buckets only applies when creating one.
        if not self.scribe.has_category(category):
            self.scribe.ensure_category(category, self.num_buckets)
        return FStream(self, category)


class FStream:
    """An immutable operator chain; every method returns a new stream."""

    def __init__(self, builder: StreamBuilder, source: str,
                 stages: tuple[_Stage, ...] = (),
                 sink: str | None = None) -> None:
        self._builder = builder
        self._source = source
        self._stages = stages if stages else (_Stage(),)
        self._sink = sink

    def _extend(self, mutate: Callable[[list[_Stage]], None]) -> "FStream":
        stages = [_Stage(list(s.ops), s.key_fn, s.window)
                  for s in self._stages]
        mutate(stages)
        return FStream(self._builder, self._source, tuple(stages),
                       self._sink)

    def _check_open(self, stages: list[_Stage]) -> _Stage:
        last = stages[-1]
        if last.window is not None:
            raise ConfigError(
                "a windowed aggregate terminates its stage; key_by again "
                "to continue"
            )
        return last

    # -- narrow operators ---------------------------------------------------

    def map(self, fn: Callable[[Record], Record]) -> "FStream":
        return self._extend(
            lambda stages: self._check_open(stages).ops.append(
                _Op("map", fn))
        )

    def filter(self, predicate: Callable[[Record], bool]) -> "FStream":
        return self._extend(
            lambda stages: self._check_open(stages).ops.append(
                _Op("filter", predicate))
        )

    def flat_map(self, fn: Callable[[Record], list[Record]]) -> "FStream":
        return self._extend(
            lambda stages: self._check_open(stages).ops.append(
                _Op("flat_map", fn))
        )

    # -- wide / terminal operators ----------------------------------------------

    def key_by(self, key_fn: Callable[[Record], str]) -> "FStream":
        """Re-shard by a key: ends the current stage."""
        def mutate(stages: list[_Stage]) -> None:
            self._check_open(stages).key_fn = key_fn
            stages.append(_Stage())

        return self._extend(mutate)

    def window_aggregate(self, window_seconds: float,
                         operator: MergeOperator,
                         value_fn: Callable[[Record], Any],
                         confidence: float = 0.99) -> "FStream":
        """Keyed tumbling-window fold; requires a preceding key_by."""
        def mutate(stages: list[_Stage]) -> None:
            if len(stages) < 2 or stages[-2].key_fn is None:
                raise ConfigError("window_aggregate requires key_by first")
            last = self._check_open(stages)
            last.window = (window_seconds, operator, value_fn, confidence)

        return self._extend(mutate)

    def window_count(self, window_seconds: float) -> "FStream":
        """Count per key per window (the common case)."""
        from repro.storage.merge import CounterMergeOperator

        return self.window_aggregate(window_seconds, CounterMergeOperator(),
                                     lambda record: 1)

    def to(self, category: str) -> "FStream":
        """Name the output category (defaults to ``<name>.out``)."""
        stream = self._extend(lambda stages: None)
        stream._sink = category
        return stream

    # -- compilation ----------------------------------------------------------------

    def build(self, name: str) -> FunctionalPipeline:
        builder = self._builder
        scribe = builder.scribe
        dag = Dag(name)
        jobs: list[StylusJob] = []
        stages = list(self._stages)
        # Drop a trailing empty stage left by a final key_by.
        if stages and not stages[-1].ops and stages[-1].window is None \
                and stages[-1].key_fn is None and len(stages) > 1:
            stages.pop()

        input_category = self._source
        output_category = self._sink or f"{name}.out"
        scribe.ensure_category(output_category, builder.num_buckets)

        for index, stage in enumerate(stages):
            is_last = index == len(stages) - 1
            stage_output = (output_category if is_last
                            else f"{name}.stage{index}")
            if not is_last:
                scribe.ensure_category(stage_output, builder.num_buckets)

            previous_key = stages[index - 1].key_fn if index > 0 else None
            if stage.window is not None:
                window_seconds, operator, value_fn, confidence = stage.window
                job = StylusJob.create(
                    f"{name}.win{index}", scribe, input_category,
                    _windowed_factory(stage, previous_key, window_seconds,
                                      operator, value_fn, confidence),
                    output_category=stage_output, clock=builder.clock,
                    checkpoint_policy=builder.checkpoint_policy,
                )
            else:
                job = StylusJob.create(
                    f"{name}.op{index}", scribe, input_category,
                    _fused_factory(stage),
                    output_category=stage_output, clock=builder.clock,
                    checkpoint_policy=builder.checkpoint_policy,
                )
            dag.add(job, reads=[input_category], writes=[stage_output])
            jobs.append(job)
            input_category = stage_output

        return FunctionalPipeline(name, dag, jobs, output_category)


def _fused_factory(stage: _Stage):
    return lambda: _FusedStateless(list(stage.ops), stage.key_fn)


def _windowed_factory(stage: _Stage, previous_key, window_seconds: float,
                      operator: MergeOperator, value_fn, confidence: float):
    ops = list(stage.ops)

    def extract(event: Event) -> list[tuple[str, Any]]:
        records: list[Record] = [event.to_record()]
        for op in ops:
            if op.kind == "map":
                records = [op.fn(r) for r in records]
            elif op.kind == "filter":
                records = [r for r in records if op.fn(r)]
            else:
                records = [out for r in records for out in op.fn(r)]
        key_fn = previous_key if previous_key is not None else (lambda r: "all")
        return [(str(key_fn(r)), value_fn(r)) for r in records]

    return lambda: WindowedAggregator(window_seconds, operator, extract,
                                      confidence=confidence)
