"""Posts workload for the Chorus pipeline (paper Section 5.1).

Generates a stream of (anonymized) post records with hashtags, ages,
genders, and countries, including a scripted "TV-ad moment": a huge
spike in one hashtag over a two-minute window — the paper's
"#likeagirl" Superbowl example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.runtime.rng import make_rng
from repro.workloads.zipf import ZipfSampler

Record = dict[str, Any]

HASHTAGS = ("#superbowl", "#election", "#worldcup", "#oscars", "#newyear",
            "#monday", "#travel", "#food", "#music", "#fitness",
            "#likeagirl", "#science")

AGE_BUCKETS = ("13-17", "18-24", "25-34", "35-44", "45-54", "55+")
GENDERS = ("female", "male", "unknown")
COUNTRIES = ("US", "BR", "IN", "GB", "ID", "MX", "DE", "JP")


@dataclass(frozen=True)
class AdMoment:
    """A scripted spike for one hashtag (the Superbowl-ad effect)."""

    hashtag: str = "#likeagirl"
    start: float = 300.0
    duration: float = 120.0
    multiplier: float = 40.0


@dataclass
class PostsWorkload:
    """Deterministic post stream with one optional ad moment."""

    seed: int = 23
    rate_per_second: float = 50.0
    ad_moment: AdMoment | None = AdMoment()

    def generate(self, duration_seconds: float) -> Iterator[Record]:
        rng = make_rng(self.seed, "posts")
        sampler = ZipfSampler(len(HASHTAGS), 1.0, rng)
        count = int(duration_seconds * self.rate_per_second)
        for i in range(count):
            arrival = i / self.rate_per_second
            hashtag = HASHTAGS[sampler.sample()]
            moment = self.ad_moment
            if (moment is not None
                    and moment.start <= arrival < moment.start + moment.duration):
                boost = moment.multiplier / (moment.multiplier + 1.0)
                if rng.random() < boost:
                    hashtag = moment.hashtag
            yield {
                "event_time": round(arrival, 3),
                "post_id": f"p{i}",
                "hashtag": hashtag,
                "text": f"a post about {hashtag[1:]} {hashtag}",
                "age_bucket": rng.choice(AGE_BUCKETS),
                "gender": rng.choice(GENDERS),
                "country": rng.choice(COUNTRIES),
            }

    def spike_window(self) -> tuple[float, float] | None:
        if self.ad_moment is None:
            return None
        return (self.ad_moment.start,
                self.ad_moment.start + self.ad_moment.duration)
