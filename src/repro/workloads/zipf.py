"""Zipfian sampling over a fixed universe of keys.

Realtime analytics traffic is heavily skewed (a few hot events/topics
dominate); the dimension ids, event names, and topics in the workloads
draw from this sampler. Uses the inverse-CDF method over the exact
normalized Zipf probabilities, so small universes are exact rather than
approximated.
"""

from __future__ import annotations

import bisect
import random

from repro.errors import ConfigError


class ZipfSampler:
    """Samples indices ``0..n-1`` with P(i) proportional to 1/(i+1)^s."""

    def __init__(self, n: int, exponent: float = 1.1,
                 rng: random.Random | None = None) -> None:
        if n < 1:
            raise ConfigError("universe size must be >= 1")
        if exponent <= 0:
            raise ConfigError("exponent must be positive")
        self.n = n
        self.exponent = exponent
        self._rng = rng if rng is not None else random.Random(0)
        weights = [1.0 / (i + 1) ** exponent for i in range(n)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: list[float] = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0  # guard against float round-off

    def sample(self) -> int:
        return bisect.bisect_left(self._cdf, self._rng.random())

    def probability(self, index: int) -> float:
        if not 0 <= index < self.n:
            raise ConfigError(f"index {index} out of range")
        previous = self._cdf[index - 1] if index > 0 else 0.0
        return self._cdf[index] - previous
