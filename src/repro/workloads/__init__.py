"""Synthetic workload generators.

Production Facebook streams are not available, so every experiment runs
on seeded synthetic workloads whose distributional properties (Zipfian
key skew, bursty topics, bounded event-time disorder) exercise the same
code paths. Generators are deterministic for a given seed.
"""

from repro.workloads.events import EventStreamWorkload, TrendingEventsWorkload
from repro.workloads.posts import PostsWorkload
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "EventStreamWorkload",
    "PostsWorkload",
    "TrendingEventsWorkload",
    "ZipfSampler",
]
