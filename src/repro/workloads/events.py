"""Event-stream workloads for the trending pipeline and the benchmarks.

:class:`TrendingEventsWorkload` generates the Figure 3 input: events
with an event type, a dimension id (resolvable against a generated
dimension table), and text classifiable into a topic. A configurable
set of *trend bursts* makes chosen topics spike in chosen intervals so
the trending pipeline has ground truth to find.

:class:`EventStreamWorkload` is the plainer Figure 2 / Figure 6 input:
(event_time, event, category, score) records at a fixed rate with
bounded event-time disorder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ConfigError
from repro.runtime.rng import make_rng
from repro.workloads.zipf import ZipfSampler

Record = dict[str, Any]

TOPICS = ("movies", "babies", "sports", "politics", "music",
          "food", "travel", "fashion", "science", "games")

LANGUAGES = ("en", "es", "pt", "fr", "de", "hi", "ar", "id")

EVENT_TYPES = ("post", "comment", "like", "share", "click")


@dataclass(frozen=True)
class TrendBurst:
    """A scripted spike: ``topic`` is boosted in ``[start, end)``."""

    topic: str
    start: float
    end: float
    multiplier: float = 10.0


@dataclass
class TrendingEventsWorkload:
    """The Figure 3 input stream plus its dimension side table."""

    seed: int = 7
    num_dimensions: int = 200
    rate_per_second: float = 100.0
    max_disorder_seconds: float = 2.0
    interesting_fraction: float = 0.6  # events passing the Filterer
    bursts: tuple[TrendBurst, ...] = ()
    _rng: Any = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise ConfigError("rate must be positive")
        self._rng = make_rng(self.seed, "trending-events")
        self._dim_sampler = ZipfSampler(self.num_dimensions, 1.05, self._rng)
        self._topic_sampler = ZipfSampler(len(TOPICS), 0.8, self._rng)

    # -- the dimension side table (loaded into Laser for the Joiner) -----------

    def dimension_rows(self) -> list[Record]:
        """(dim_id, language, country) rows for the lookup join."""
        rng = make_rng(self.seed, "dimensions")
        return [
            {
                "dim_id": f"dim{i}",
                "language": rng.choice(LANGUAGES),
                "country": rng.choice(("US", "BR", "IN", "GB", "ID", "MX")),
                "event_time": 0.0,
            }
            for i in range(self.num_dimensions)
        ]

    # -- the event stream ----------------------------------------------------------

    def _topic_at(self, when: float) -> str:
        boosted = [b for b in self.bursts if b.start <= when < b.end]
        if boosted:
            total_boost = sum(b.multiplier for b in boosted)
            if self._rng.random() < total_boost / (total_boost + 1.0):
                pick = self._rng.random() * total_boost
                for burst in boosted:
                    pick -= burst.multiplier
                    if pick <= 0:
                        return burst.topic
        return TOPICS[self._topic_sampler.sample()]

    def generate(self, duration_seconds: float) -> Iterator[Record]:
        """Yield events covering ``[0, duration)`` in arrival order.

        Arrival order differs from event-time order by up to
        ``max_disorder_seconds`` — the "imperfect ordering" Stylus must
        handle (Section 2.4).
        """
        count = int(duration_seconds * self.rate_per_second)
        for i in range(count):
            arrival = (i + self._rng.random()) / self.rate_per_second
            event_time = max(
                0.0, arrival - self._rng.uniform(0, self.max_disorder_seconds)
            )
            topic = self._topic_at(arrival)
            interesting = self._rng.random() < self.interesting_fraction
            yield {
                "event_time": round(event_time, 3),
                "event_type": ("post" if interesting
                               else self._rng.choice(EVENT_TYPES[2:])),
                "dim_id": f"dim{self._dim_sampler.sample()}",
                "text": f"something about {topic} #{topic}",
            }

    def ground_truth_topics(self) -> list[str]:
        """Topics that should trend, from the scripted bursts."""
        return sorted({burst.topic for burst in self.bursts})


@dataclass
class EventStreamWorkload:
    """The Figure 2 input: (event_time, event, category, score) records."""

    seed: int = 11
    num_events: int = 50
    categories: tuple[str, ...] = ("sports", "movies", "news")
    rate_per_second: float = 200.0
    max_disorder_seconds: float = 1.0

    def generate(self, duration_seconds: float) -> Iterator[Record]:
        rng = make_rng(self.seed, "event-stream")
        sampler = ZipfSampler(self.num_events, 1.1, rng)
        count = int(duration_seconds * self.rate_per_second)
        for i in range(count):
            arrival = i / self.rate_per_second
            event_time = max(
                0.0, arrival - rng.uniform(0, self.max_disorder_seconds)
            )
            yield {
                "event_time": round(event_time, 3),
                "event": f"e{sampler.sample()}",
                "category": rng.choice(self.categories),
                "score": round(rng.expovariate(0.5), 4),
            }
