"""reprolint: AST-based invariant checker + determinism sanitizer.

Static rules (``python -m repro.lint``):

======  ==============================================================
R001    no wall-clock time outside ``runtime/clock.py`` and benchmarks
R002    no random-module (global generator) calls outside ``runtime/rng.py``
R003    metric names are stable ``component.noun[.verb]`` literals
R004    no bare/broad except; ``StoreUnavailable`` handlers must account
R005    no unordered set iteration feeding deterministic outputs
R006    no mutable default arguments
======  ==============================================================

Suppress a justified finding with a same-line pragma::

    except StoreUnavailable as exc:  # lint: ignore[R004] counted by caller

Pre-existing findings live in a committed baseline (``lint-baseline.json``)
so the checker gates *new* violations; ``--write-baseline`` regenerates it.

The dynamic half (``python -m repro.lint --sanitize``) runs the same
seeded chaos campaign twice and fails on any divergence in metric
snapshots, Scribe offsets, or Stylus state digests — the runtime check
the static rules exist to protect.
"""

from repro.lint.engine import (
    BaselineDiff,
    FileContext,
    Finding,
    LintReport,
    Rule,
    diff_against_baseline,
    load_baseline,
    register,
    registered_rules,
    run_lint,
    write_baseline,
)
from repro.lint.sanitizer import SanitizerReport, run_sanitizer

__all__ = [
    "BaselineDiff", "FileContext", "Finding", "LintReport", "Rule",
    "diff_against_baseline", "load_baseline", "register",
    "registered_rules", "run_lint", "write_baseline",
    "SanitizerReport", "run_sanitizer",
]
