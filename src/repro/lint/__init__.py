"""reprolint: AST-based invariant checker + determinism sanitizer.

Static rules (``python -m repro.lint``):

======  ==============================================================
R001    no wall-clock time outside ``runtime/clock.py`` and benchmarks
R002    no random-module (global generator) calls outside ``runtime/rng.py``
R003    metric names are stable ``component.noun[.verb]`` literals
R004    no bare/broad except; ``StoreUnavailable`` handlers must account
R005    no unordered set iteration feeding deterministic outputs
R006    no mutable default arguments
P001    every ``lint: ignore`` pragma must suppress something and
        carry a trailing rationale
======  ==============================================================

Flow rules (``python -m repro.lint --flow``, :mod:`repro.lint.flow`) add
an interprocedural effect-ordering pass over the delivery-semantics
protocol (stylus/, swift/, puma/, scribe/, runtime/topology.py):

======  ==============================================================
R007    exactly-once output must not publish before the transactional
        checkpoint commits
R008    at-least-once saves state before acking offsets; at-most-once
        advances offsets before side effects
R009    credit counters stay paired (``*.granted`` needs ``*.blocked``
        or ``*.reconciled``); degraded-mode handlers must count
R010    restart paths derive checkpoint numbering and resume offsets
        from durable state, never a literal 0
======  ==============================================================

Suppress a justified finding with a same-line pragma (the rationale
after the bracket is required — P001 flags its absence)::

    except StoreUnavailable as exc:  # lint: ignore[R004] counted by caller

Ambiguous effect sites the flow pass cannot classify are declared with
``# lint: effect[...]`` annotations — see :mod:`repro.lint.flow`.

Pre-existing findings live in a committed baseline (``lint-baseline.json``)
so the checker gates *new* violations; ``--write-baseline`` regenerates
it and ``--prune-baseline`` drops fingerprints that no longer fire.

The dynamic half (``python -m repro.lint --sanitize``) runs the same
seeded chaos campaign twice and fails on any divergence in metric
snapshots, Scribe offsets, or Stylus state digests — the runtime check
the static rules exist to protect.
"""

from repro.lint.engine import (
    BaselineDiff,
    FileContext,
    Finding,
    LintReport,
    Pragma,
    Rule,
    diff_against_baseline,
    load_baseline,
    prune_baseline,
    register,
    registered_rules,
    run_lint,
    write_baseline,
)
from repro.lint.sanitizer import SanitizerReport, run_sanitizer

__all__ = [
    "BaselineDiff", "FileContext", "Finding", "LintReport", "Pragma",
    "Rule", "diff_against_baseline", "load_baseline", "prune_baseline",
    "register", "registered_rules", "run_lint", "write_baseline",
    "SanitizerReport", "run_sanitizer",
]
