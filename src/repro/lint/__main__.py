"""Command-line entry point: ``python -m repro.lint``.

Exit codes: 0 clean (all findings grandfathered or suppressed), 1 new
violations (or a determinism divergence under ``--sanitize``), 2 usage
or parse errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.engine import (diff_against_baseline, format_human,
                               format_json, load_baseline, prune_baseline,
                               registered_rules, run_lint, write_baseline)
from repro.lint.sanitizer import format_report, run_sanitizer


def _find_root(start: Path) -> Path:
    """The nearest ancestor holding pyproject.toml (else ``start``)."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="reprolint: AST invariant checker + determinism "
                    "sanitizer for the repro ecosystem")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: src/, "
                             "benchmarks/, examples/ under the repo root)")
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: nearest ancestor with "
                             "pyproject.toml)")
    parser.add_argument("--check", action="store_true",
                        help="CI mode; with --prune-baseline, fail on "
                             "stale entries instead of rewriting")
    parser.add_argument("--flow", action="store_true",
                        help="include the interprocedural effect-ordering "
                             "rules (R007-R010, repro.lint.flow)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")
    parser.add_argument("--select", default=None, metavar="R001,R003",
                        help="run only these rule ids")
    parser.add_argument("--rules", dest="select", default=None,
                        metavar="R007,R010",
                        help="alias of --select, for CI job scoping")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="drop fingerprints the full rule set no "
                             "longer produces from the baseline")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file (default: <root>/"
                             "lint-baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: report every finding "
                             "as new")
    parser.add_argument("--write-baseline", action="store_true",
                        help="grandfather the current findings and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--sanitize", action="store_true",
                        help="run the seeded campaign twice and diff "
                             "metric/offset/state digests")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed for --sanitize (default 0)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in registered_rules().items():
            print(f"{rule_id}  {cls.summary}")
        return 0

    if args.sanitize:
        report = run_sanitizer(seed=args.seed)
        print(format_report(report))
        return 0 if report.deterministic else 1

    root = (args.root if args.root is not None
            else _find_root(Path.cwd().resolve()))
    baseline_path = (args.baseline if args.baseline is not None
                     else root / "lint-baseline.json")

    if args.prune_baseline:
        # Prune against the *full* rule set over the default paths —
        # never a --select/--rules or path-narrowed run, which would
        # drop fingerprints that are merely out of scope, not fixed.
        report = run_lint(root, flow=True)
        stale = prune_baseline(baseline_path, report, dry_run=args.check)
        if args.check:
            for entry in stale:
                print(f"stale baseline entry: {entry['rule']} "
                      f"{entry['path']}: {entry['snippet']}")
            if stale:
                print(f"reprolint: baseline has {len(stale)} stale "
                      f"entr{'y' if len(stale) == 1 else 'ies'} — run "
                      "--prune-baseline without --check to rewrite")
                return 1
            print("reprolint: baseline is minimal")
            return 0
        print(f"reprolint: pruned {len(stale)} stale fingerprint(s) from "
              f"{baseline_path}")
        return 0

    paths = [p if p.is_absolute() else root / p
             for p in args.paths] or None
    select = (None if args.select is None
              else [s.strip() for s in args.select.split(",") if s.strip()])
    try:
        report = run_lint(root, paths=paths, select=select, flow=args.flow)
    except ValueError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(baseline_path, report)
        print(f"reprolint: wrote {len(report.findings)} finding(s) to "
              f"{baseline_path}")
        return 0
    baseline = {} if args.no_baseline else load_baseline(baseline_path)
    diff = diff_against_baseline(report, baseline)
    print(format_json(report, diff) if args.as_json
          else format_human(report, diff))
    if report.parse_errors:
        return 2
    return 1 if diff.new else 0


if __name__ == "__main__":
    sys.exit(main())
