"""The reprolint engine: file walking, rule registry, pragmas, baselines.

The reproduction rests on invariants nothing used to enforce mechanically:
all time flows through :mod:`repro.runtime.clock`, all randomness through
:mod:`repro.runtime.rng`, every ``StoreUnavailable`` is accounted for, and
metric names are stable dotted literals that dashboards and the chaos
property suite key on. This module is the scaffolding that lets small
AST-based rules (:mod:`repro.lint.rules`) enforce those invariants on
every future PR:

- :func:`run_lint` walks a tree, parses each file once, and hands a
  :class:`FileContext` to every registered rule;
- ``# lint: ignore[R004] why`` pragmas suppress findings on their own line
  (justified exceptions stay visible in the diff, not in reviewer memory);
  the engine itself audits them (rule ``P001``): a pragma that suppresses
  nothing, or one with no trailing rationale, is a finding;
- a committed baseline file grandfathers pre-existing findings so the
  checker can gate *new* violations from day one (see :func:`diff_against_
  baseline`); fingerprints hash the line *text*, not the line *number*,
  so unrelated edits above a grandfathered finding do not un-grandfather
  it.

The engine is dependency-free on purpose: this repo runs offline with
``dependencies = []``, so the linter has to be one of ours.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding", "FileContext", "Rule", "LintReport", "BaselineDiff",
    "Pragma", "register", "registered_rules", "run_lint",
    "iter_python_files", "iter_comments",
    "load_baseline", "write_baseline", "diff_against_baseline",
    "prune_baseline", "format_human", "format_json",
]

#: A comment of the form ``lint: ignore[R001,R005] why`` suppresses
#: findings of the named rules on the same source line; the text after
#: the bracket is the (required) rationale.
_PRAGMA_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Z0-9_,\s]+)\]\s*(.*)$")

#: Directories never worth parsing.
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "build", "dist"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix-style path relative to the lint root
    line: int
    message: str
    snippet: str = ""

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)


def _fingerprint(finding: Finding, occurrence: int) -> str:
    """Stable identity for baselining: rule + file + line *text* (not
    line number, which shifts on every unrelated edit) + an occurrence
    index to tell identical lines in the same file apart."""
    payload = "|".join([finding.rule, finding.path,
                        finding.snippet.strip(), str(occurrence)])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class FileContext:
    """Everything a rule needs to check one file."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path  # posix relpath, e.g. "src/repro/scribe/store.py"
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(rule=rule, path=self.path, line=lineno,
                       message=message,
                       snippet=self.line_text(lineno).strip())

    def path_endswith(self, suffix: str) -> bool:
        return self.path.endswith(suffix)

    def in_directory(self, name: str) -> bool:
        parts = self.path.split("/")
        return name in parts[:-1]


class Rule:
    """Base class for lint rules; subclasses register via :func:`register`.

    ``check_file`` runs once per file; ``finalize`` runs once per lint
    invocation after every file was seen, for cross-file rules (metric
    near-duplicate detection). A fresh rule instance is built per
    :func:`run_lint` call, so rules may keep state across files.
    """

    rule_id: str = "R000"
    summary: str = ""
    #: Flow rules (:mod:`repro.lint.flow`) cost an interprocedural pass
    #: per file, so they only run under ``--flow`` or explicit --select.
    flow: bool = False

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finalize(self) -> Iterable[Finding]:
        return ()


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_cls.rule_id
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


@register
class PragmaHygiene(Rule):
    """Engine-driven rule: the engine emits the P001 findings itself.

    Only the engine sees which pragmas actually suppressed something
    across every rule, so this class exists to give the finding an id, a
    summary for ``--list-rules``, and a handle for ``--select``. P001
    findings are deliberately not themselves pragma-suppressible — a
    pragma justifying another pragma is review noise — but they baseline
    like any other finding.
    """

    rule_id = "P001"
    summary = ("a lint: ignore pragma must suppress at least one finding "
               "of an active rule and carry a trailing rationale")


def registered_rules() -> dict[str, type[Rule]]:
    # Import for the registration side effect; cheap after the first call.
    from repro.lint import flow as _flow  # noqa: F401
    from repro.lint import rules as _rules  # noqa: F401
    return dict(sorted(_REGISTRY.items()))


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    def fingerprints(self) -> dict[str, Finding]:
        """Map fingerprint -> finding, disambiguating identical lines."""
        seen: dict[tuple[str, str, str], int] = {}
        out: dict[str, Finding] = {}
        for finding in sorted(self.findings, key=Finding.sort_key):
            key = (finding.rule, finding.path, finding.snippet.strip())
            occurrence = seen.get(key, 0)
            seen[key] = occurrence + 1
            out[_fingerprint(finding, occurrence)] = finding
        return out


def iter_python_files(roots: Iterable[Path]) -> Iterator[Path]:
    for root in roots:
        if root.is_file() and root.suffix == ".py":
            yield root
            continue
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in path.parts):
                yield path


def iter_comments(source: str) -> Iterator[tuple[int, str]]:
    """(lineno, text) for every real COMMENT token in ``source``.

    Tokenizing — rather than regex-scanning raw lines — keeps
    pragma-shaped text inside string literals and docstrings from
    counting: the rule table in ``repro/lint/__init__.py`` *shows* a
    pragma example without owning one.
    """
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The caller already records the file as a parse error; comments
        # seen before the bad token still count.
        return


@dataclass(frozen=True)
class Pragma:
    """One ``# lint: ignore[...]`` suppression comment."""

    rules: frozenset[str]
    rationale: str
    snippet: str


def _parse_pragmas(source: str) -> dict[int, Pragma]:
    """Line number -> suppression pragma found on that line."""
    pragmas: dict[int, Pragma] = {}
    lines = source.splitlines()
    for lineno, comment in iter_comments(source):
        match = _PRAGMA_RE.search(comment)
        if not match:
            continue
        rules = frozenset(part.strip() for part in match.group(1).split(",")
                          if part.strip())
        snippet = lines[lineno - 1].strip() if lineno <= len(lines) else ""
        pragmas[lineno] = Pragma(rules=rules,
                                 rationale=match.group(2).strip(),
                                 snippet=snippet)
    return pragmas


def _pragma_hygiene(pragmas_by_path: dict[str, dict[int, Pragma]],
                    used: set[tuple[str, int, str]],
                    active_ids: set[str]) -> Iterator[Finding]:
    """P001: every suppression must earn its keep, visibly.

    A pragma rule id is "unused" only when that rule actually ran — a
    ``--select R001`` invocation must not condemn an ``ignore[R004]``.
    """
    for path in sorted(pragmas_by_path):
        for lineno in sorted(pragmas_by_path[path]):
            pragma = pragmas_by_path[path][lineno]
            for rule_id in sorted(pragma.rules):
                if rule_id == "P001" or rule_id not in active_ids:
                    continue
                if (path, lineno, rule_id) in used:
                    continue
                yield Finding(
                    rule="P001", path=path, line=lineno,
                    message=(f"pragma suppresses nothing: no {rule_id} "
                             "finding on this line — remove the stale "
                             "ignore"),
                    snippet=pragma.snippet)
            if not pragma.rationale:
                yield Finding(
                    rule="P001", path=path, line=lineno,
                    message=("pragma has no rationale: justify the "
                             "suppression after the bracket, e.g. "
                             "'# lint: ignore[R004] counted by caller'"),
                    snippet=pragma.snippet)


def run_lint(root: Path, paths: Iterable[Path] | None = None,
             select: Iterable[str] | None = None,
             flow: bool = False) -> LintReport:
    """Lint every python file under ``paths`` (relative to ``root``).

    ``select`` restricts to a subset of rule ids. ``flow=True`` adds the
    interprocedural effect-ordering rules (:mod:`repro.lint.flow`);
    naming one of them in ``select`` enables it regardless. Findings on
    a line carrying a matching ``# lint: ignore[...]`` pragma are
    dropped and counted in ``report.suppressed``.
    """
    root = Path(root)
    if paths is None:
        paths = [candidate for name in ("src", "benchmarks", "examples")
                 if (candidate := root / name).is_dir()]
    rule_classes = registered_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - rule_classes.keys()
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        rule_classes = {rule_id: cls for rule_id, cls in rule_classes.items()
                        if rule_id in wanted}
    elif not flow:
        rule_classes = {rule_id: cls for rule_id, cls in rule_classes.items()
                        if not cls.flow}
    rules = [cls() for cls in rule_classes.values()]
    active_ids = set(rule_classes)

    report = LintReport()
    pragmas_by_path: dict[str, dict[int, Pragma]] = {}
    used: set[tuple[str, int, str]] = set()
    for file_path in iter_python_files(paths):
        try:
            relpath = file_path.relative_to(root).as_posix()
        except ValueError:
            relpath = file_path.as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=relpath)
        except (OSError, SyntaxError) as exc:
            report.parse_errors.append((relpath, str(exc)))
            continue
        report.files_scanned += 1
        ctx = FileContext(relpath, source, tree)
        pragmas = _parse_pragmas(source)
        if pragmas:
            pragmas_by_path[relpath] = pragmas
        for rule in rules:
            for finding in rule.check_file(ctx):
                pragma = pragmas.get(finding.line)
                if pragma is not None and finding.rule in pragma.rules:
                    report.suppressed += 1
                    used.add((relpath, finding.line, finding.rule))
                else:
                    report.findings.append(finding)
    for rule in rules:
        # Cross-file findings honour pragmas too: the anchor line of a
        # finalize finding may carry a justified ignore.
        for finding in rule.finalize():
            pragma = pragmas_by_path.get(finding.path, {}).get(finding.line)
            if pragma is not None and finding.rule in pragma.rules:
                report.suppressed += 1
                used.add((finding.path, finding.line, finding.rule))
            else:
                report.findings.append(finding)
    if "P001" in active_ids:
        report.findings.extend(
            _pragma_hygiene(pragmas_by_path, used, active_ids))
    report.findings.sort(key=Finding.sort_key)
    return report


# -- baseline ---------------------------------------------------------------

BASELINE_VERSION = 1


def write_baseline(path: Path, report: LintReport) -> None:
    """Persist the current findings as grandfathered."""
    entries = [
        {"fingerprint": fingerprint, "rule": finding.rule,
         "path": finding.path, "message": finding.message,
         "snippet": finding.snippet.strip()}
        for fingerprint, finding in sorted(report.fingerprints().items(),
                                           key=lambda kv: kv[1].sort_key())
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def load_baseline(path: Path) -> dict[str, dict]:
    """Fingerprint -> baseline entry; empty when the file is absent."""
    if not path.is_file():
        return {}
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} "
            f"in {path}"
        )
    return {entry["fingerprint"]: entry for entry in payload["findings"]}


@dataclass
class BaselineDiff:
    """New findings vs grandfathered vs fixed-since-baseline."""

    new: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    stale: list[dict] = field(default_factory=list)


def prune_baseline(path: Path, report: LintReport,
                   dry_run: bool = False) -> list[dict]:
    """Drop baseline fingerprints the current run no longer produces.

    Returns the stale entries (sorted by fingerprint); rewrites the file
    unless ``dry_run`` or nothing is stale. The report must come from a
    full run (default paths, every rule, ``flow=True``): pruning against
    a ``--select`` or path-narrowed run would drop fingerprints that are
    merely out of scope, not fixed.
    """
    baseline = load_baseline(path)
    current = report.fingerprints()
    stale = [entry for fingerprint, entry in sorted(baseline.items())
             if fingerprint not in current]
    if stale and not dry_run:
        kept = [entry for entry in baseline.values()
                if entry not in stale]
        kept.sort(key=lambda entry: (entry["path"], entry["rule"],
                                     entry["snippet"], entry["fingerprint"]))
        payload = {"version": BASELINE_VERSION, "findings": kept}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    return stale


def diff_against_baseline(report: LintReport,
                          baseline: dict[str, dict]) -> BaselineDiff:
    diff = BaselineDiff()
    current = report.fingerprints()
    for fingerprint, finding in current.items():
        if fingerprint in baseline:
            diff.grandfathered.append(finding)
        else:
            diff.new.append(finding)
    for fingerprint, entry in baseline.items():
        if fingerprint not in current:
            diff.stale.append(entry)
    diff.new.sort(key=Finding.sort_key)
    diff.grandfathered.sort(key=Finding.sort_key)
    return diff


# -- output -----------------------------------------------------------------

def format_human(report: LintReport, diff: BaselineDiff) -> str:
    lines: list[str] = []
    for finding in diff.new:
        lines.append(f"{finding.path}:{finding.line}: {finding.rule} "
                     f"{finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    summary = (f"reprolint: {report.files_scanned} files, "
               f"{len(diff.new)} new finding(s), "
               f"{len(diff.grandfathered)} grandfathered, "
               f"{report.suppressed} suppressed by pragma")
    if diff.stale:
        summary += (f", {len(diff.stale)} stale baseline entr"
                    f"{'y' if len(diff.stale) == 1 else 'ies'} "
                    "(fixed — re-run with --write-baseline)")
    for relpath, error in report.parse_errors:
        lines.append(f"{relpath}: parse error: {error}")
    lines.append(summary)
    return "\n".join(lines)


def format_json(report: LintReport, diff: BaselineDiff) -> str:
    def encode(findings: list[Finding]) -> list[dict]:
        return [{"rule": f.rule, "path": f.path, "line": f.line,
                 "message": f.message, "snippet": f.snippet}
                for f in findings]

    payload = {
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
        "new": encode(diff.new),
        "grandfathered": encode(diff.grandfathered),
        "stale_baseline": diff.stale,
        "parse_errors": [{"path": p, "error": e}
                         for p, e in report.parse_errors],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
