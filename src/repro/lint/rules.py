"""The repo-specific rule catalogue (R001-R006).

Each rule enforces one invariant the simulated ecosystem depends on; see
DESIGN.md ("Static analysis & determinism sanitizer") for the catalogue
with rationale. Rules are registered into :mod:`repro.lint.engine`'s
global registry on import.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.lint.engine import FileContext, Finding, Rule, register

# ---------------------------------------------------------------------------
# R001 — no wall clock
# ---------------------------------------------------------------------------

#: ``time`` module functions that read (or block on) real time.
_WALL_TIME_FNS = frozenset({
    "time", "monotonic", "perf_counter", "time_ns", "monotonic_ns",
    "perf_counter_ns", "sleep", "localtime", "gmtime",
})
#: ``datetime``/``date`` constructors that read real time.
_WALL_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class NoWallClock(Rule):
    """All time must flow through ``Clock``/``SimClock``.

    Wall-clock reads make simulated runs unreproducible: two runs of the
    same seeded experiment would see different timestamps, so checkpoint
    intervals, retention trims, and latency measurements would diverge.
    Allowed only in ``repro/runtime/clock.py`` (the one place WallClock
    is implemented) and under ``benchmarks/`` (which measure real
    throughput by design).
    """

    rule_id = "R001"
    summary = "no wall-clock time outside runtime/clock.py and benchmarks/"

    _ALLOWED_SUFFIX = "repro/runtime/clock.py"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path_endswith(self._ALLOWED_SUFFIX):
            return
        if ctx.path.startswith("benchmarks/") or ctx.in_directory("benchmarks"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name is None:
                    continue
                if (name.startswith("time.")
                        and name.split(".", 1)[1] in _WALL_TIME_FNS):
                    yield ctx.finding(
                        self.rule_id, node,
                        f"wall-clock call {name}(); take a Clock and use "
                        "clock.now() so simulated runs stay deterministic")
                elif (name.split(".")[-1] in _WALL_DATETIME_FNS
                      and name.split(".")[0] in ("datetime", "date")):
                    yield ctx.finding(
                        self.rule_id, node,
                        f"wall-clock call {name}(); take a Clock and use "
                        "clock.now() so simulated runs stay deterministic")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_TIME_FNS:
                        yield ctx.finding(
                            self.rule_id, node,
                            f"importing time.{alias.name} invites "
                            "wall-clock reads; route time through a Clock")


# ---------------------------------------------------------------------------
# R002 — no unseeded randomness
# ---------------------------------------------------------------------------

#: Module-level functions on ``random`` that draw from the shared,
#: process-global (and therefore unseeded-by-us) generator.
_RANDOM_MODULE_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
    "getrandbits", "getstate", "setstate", "randbytes",
})


@register
class NoUnseededRandomness(Rule):
    """All randomness must flow through seeded ``repro.runtime.rng``.

    Calls on the ``random`` *module* use the process-global generator:
    any other component (or the test runner) touching it perturbs every
    draw after, so experiments stop being reproducible. ``make_rng(seed,
    stream)`` gives each component an independent seeded stream instead.
    Allowed only in ``repro/runtime/rng.py``. Annotating with
    ``random.Random`` or constructing a *seeded* ``random.Random(x)`` is
    fine; a bare ``random.Random()`` seeds from the OS and is flagged.
    """

    rule_id = "R002"
    summary = "no random-module calls outside runtime/rng.py"

    _ALLOWED_SUFFIX = "repro/runtime/rng.py"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path_endswith(self._ALLOWED_SUFFIX):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name is None or not name.startswith("random."):
                    continue
                fn = name.split(".", 1)[1]
                if fn in _RANDOM_MODULE_FNS:
                    yield ctx.finding(
                        self.rule_id, node,
                        f"{name}() draws from the process-global generator;"
                        " use repro.runtime.rng.make_rng(seed, stream)")
                elif fn == "Random" and not node.args and not node.keywords:
                    yield ctx.finding(
                        self.rule_id, node,
                        "random.Random() with no seed is OS-seeded; use "
                        "make_rng(seed, stream)")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _RANDOM_MODULE_FNS:
                        yield ctx.finding(
                            self.rule_id, node,
                            f"importing random.{alias.name} invites global-"
                            "generator draws; use make_rng(seed, stream)")


# ---------------------------------------------------------------------------
# R003 — metric-name discipline
# ---------------------------------------------------------------------------

#: Pure-literal names: lowercase dotted segments, 2-4 deep
#: (``component.noun`` or ``component.noun.verb``; one extra level for
#: families like ``scuba.<table>.cache.hits``).
_METRIC_LITERAL_RE = re.compile(
    r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){1,3}$")
#: Same shape with ``*`` standing in for f-string placeholders.
_METRIC_SEGMENT_RE = re.compile(r"^[a-z0-9_*]+$")

_METRIC_METHODS = frozenset({"counter", "gauge", "timer", "time"})


def _edit_distance(a: str, b: str, cap: int = 2) -> int:
    """Levenshtein distance, early-exiting once it exceeds ``cap``."""
    if abs(len(a) - len(b)) > cap:
        return cap + 1
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        best = i
        for j, cb in enumerate(b, start=1):
            cost = min(previous[j] + 1, current[j - 1] + 1,
                       previous[j - 1] + (ca != cb))
            current.append(cost)
            best = min(best, cost)
        if best > cap:
            return cap + 1
        previous = current
    return previous[-1]


@register
class MetricNameDiscipline(Rule):
    """Metric names are stable dotted literals in ``component.noun[.verb]``
    shape.

    Dashboards, the chaos property suite, and ``MetricsRegistry.find``
    key on these exact strings; a typo'd or free-form name silently
    splits a counter family. The rule harvests every ``.counter("...")``
    / ``.gauge("...")`` / ``.timer("...")`` / ``.time("...")`` literal
    and f-string across the tree, enforces the dotted-lowercase shape,
    flags fully dynamic names (a plain variable — unharvestable, so
    invisible to this audit), and cross-file near-duplicates (edit
    distance 1) that are almost certainly typos.
    """

    rule_id = "R003"
    summary = "metric names must be stable component.noun[.verb] literals"

    _ALLOWED_SUFFIX = "repro/runtime/metrics.py"  # the registry itself

    def __init__(self) -> None:
        # literal name -> first (ctx-path, finding-anchor) seen
        self._literals: dict[str, Finding] = {}

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path_endswith(self._ALLOWED_SUFFIX):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _METRIC_METHODS
                    and len(node.args) == 1 and not node.keywords):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                name = arg.value
                if not _METRIC_LITERAL_RE.match(name):
                    yield ctx.finding(
                        self.rule_id, node,
                        f"metric name {name!r} does not match "
                        "component.noun[.verb] (lowercase dotted "
                        "segments, 2-4 deep)")
                else:
                    anchor = ctx.finding(self.rule_id, node, name)
                    self._literals.setdefault(name, anchor)
            elif isinstance(arg, ast.JoinedStr):
                shape = self._fstring_shape(arg)
                segments = shape.split(".")
                bad = (not 2 <= len(segments) <= 4
                       or any(not seg or not _METRIC_SEGMENT_RE.match(seg)
                              for seg in segments))
                if bad:
                    yield ctx.finding(
                        self.rule_id, node,
                        f"metric f-string shape {shape!r} does not match "
                        "component.noun[.verb] (lowercase dotted "
                        "segments, 2-4 deep)")
            else:
                yield ctx.finding(
                    self.rule_id, node,
                    "dynamic metric name (not a string literal or "
                    "f-string): dashboards and tests cannot key on it")

    @staticmethod
    def _fstring_shape(node: ast.JoinedStr) -> str:
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:  # FormattedValue -> wildcard segment content
                parts.append("*")
        return "".join(parts)

    def finalize(self) -> Iterator[Finding]:
        names = sorted(self._literals)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if _edit_distance(a, b, cap=1) == 1:
                    anchor = self._literals[b]
                    yield Finding(
                        rule=self.rule_id, path=anchor.path,
                        line=anchor.line,
                        message=(f"metric name {b!r} is one edit away from "
                                 f"{a!r} (declared at "
                                 f"{self._literals[a].path}:"
                                 f"{self._literals[a].line}) — typo, or "
                                 "unify the family"),
                        snippet=anchor.snippet)


# ---------------------------------------------------------------------------
# R004 — exception discipline
# ---------------------------------------------------------------------------

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})
#: Names that include StoreUnavailable when caught (RETRYABLE is the
#: shared tuple from repro.runtime.retry).
_UNAVAILABLE_NAMES = frozenset({"StoreUnavailable", "RETRYABLE"})


def _exception_names(handler: ast.ExceptHandler) -> list[str]:
    node = handler.type
    if node is None:
        return []
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for elt in elts:
        if isinstance(elt, ast.Name):
            names.append(elt.id)
        elif isinstance(elt, ast.Attribute):
            names.append(elt.attr)
    return names


#: Method-name vocabulary that marks a handler as routing the failure
#: into visible accounting: counting it directly, or delegating to a
#: degraded-mode helper (defer/skip/drop) that counts on its own.
_ACCOUNTING_WORDS = ("increment", "counter", "retrier", "retry",
                     "defer", "skip", "drop")


def _handler_accounts(handler: ast.ExceptHandler) -> bool:
    """Does the handler body re-raise, count, or route through a retrier
    or a degraded-mode helper?"""
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr.lower()
            if any(word in attr for word in _ACCOUNTING_WORDS):
                return True
        if isinstance(node, (ast.Name, ast.Attribute)):
            identifier = node.id if isinstance(node, ast.Name) else node.attr
            if "retrier" in identifier.lower():
                return True
    return False


@register
class ExceptionDiscipline(Rule):
    """No bare/broad ``except``; ``StoreUnavailable`` is never swallowed
    silently.

    The chaos suite's core invariant is that every injected outage is
    *accounted for*: ``unavailable_errors`` match retry-layer failures
    and every give-up surfaces as exactly one degraded-mode counter. A
    handler that catches ``StoreUnavailable`` (or the shared RETRYABLE
    tuple) and neither re-raises, nor increments a counter, nor routes
    through a ``Retrier`` breaks that chain of custody. Bare and
    ``except Exception`` handlers are flagged unconditionally: they also
    swallow ``ProcessCrashed``, which must always propagate to the
    failure model.
    """

    rule_id = "R004"
    summary = "no bare/broad except; StoreUnavailable handlers must account"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _exception_names(node)
            if node.type is None:
                yield ctx.finding(
                    self.rule_id, node,
                    "bare except: catches ProcessCrashed and "
                    "KeyboardInterrupt; name the exceptions you mean")
                continue
            broad = sorted(set(names) & _BROAD_EXCEPTIONS)
            if broad:
                yield ctx.finding(
                    self.rule_id, node,
                    f"broad except {', '.join(broad)}: swallows "
                    "ProcessCrashed and masks bugs; name the exceptions "
                    "you mean")
                continue
            if set(names) & _UNAVAILABLE_NAMES and not _handler_accounts(node):
                yield ctx.finding(
                    self.rule_id, node,
                    "StoreUnavailable caught but neither re-raised, "
                    "counted, nor routed through a Retrier — the outage "
                    "vanishes from the chaos accounting")


# ---------------------------------------------------------------------------
# R005 — iteration-order nondeterminism
# ---------------------------------------------------------------------------

_SET_BUILTINS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})
#: Iterating consumers that preserve (and therefore leak) element order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "iter", "enumerate"})
#: Consumers whose result does not depend on element order: iterating a
#: set directly inside these is fine.
_ORDER_INSENSITIVE_CALLS = frozenset({
    "sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset",
})


def _annotation_is_set(node: ast.AST | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    return False


class _SetOriginTracker:
    """Which names/attributes in one scope are (probably) sets."""

    def __init__(self, self_attrs: frozenset[str]) -> None:
        self.names: set[str] = set()
        self.self_attrs = self_attrs

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_BUILTINS:
                return True
            if (isinstance(func, ast.Attribute)
                    and func.attr in _SET_METHODS
                    and self.is_set_expr(func.value)):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.names
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr in self.self_attrs
        return False

    def observe_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and self.is_set_expr(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if _annotation_is_set(stmt.annotation) or (
                    stmt.value is not None and self.is_set_expr(stmt.value)):
                if isinstance(stmt.target, ast.Name):
                    self.names.add(stmt.target.id)


@register
class IterationOrderNondeterminism(Rule):
    """Don't iterate sets where order can leak into outputs.

    Set iteration order depends on insertion history and — for strings —
    on ``PYTHONHASHSEED``, so it differs *between processes* even with
    identical inputs. When such an iteration feeds scheduler callbacks,
    checkpoint payloads, or serde output, two runs of the same seeded
    experiment produce different bytes and replay-based debugging (the
    MillWheel discipline) breaks. Wrap the set in ``sorted(...)`` or use
    an insertion-ordered dict; order-insensitive consumers (``len``,
    ``sum``, ``min``, ``max``, membership) are fine and not flagged.
    """

    rule_id = "R005"
    summary = "no unordered set iteration (wrap in sorted())"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        self_attrs = self._set_typed_self_attrs(ctx.tree)
        for scope in self._scopes(ctx.tree):
            yield from self._check_scope(ctx, scope, self_attrs)

    @staticmethod
    def _set_typed_self_attrs(tree: ast.AST) -> frozenset[str]:
        attrs: set[str] = set()
        probe = _SetOriginTracker(frozenset())
        for node in ast.walk(tree):
            target_value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, target_value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, target_value = node.target, node.value
            else:
                continue
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if isinstance(node, ast.AnnAssign) and _annotation_is_set(
                    node.annotation):
                attrs.add(target.attr)
            elif target_value is not None and probe.is_set_expr(target_value):
                attrs.add(target.attr)
        return frozenset(attrs)

    @staticmethod
    def _scopes(tree: ast.AST) -> Iterator[list[ast.stmt]]:
        yield list(getattr(tree, "body", []))
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node.body

    @staticmethod
    def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
        """Walk a scope's nodes without descending into nested functions
        (each nested function gets its own scope pass via _scopes)."""
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _check_scope(self, ctx: FileContext, body: list[ast.stmt],
                     self_attrs: frozenset[str]) -> Iterator[Finding]:
        tracker = _SetOriginTracker(self_attrs)
        nodes = list(self._walk_scope(body))
        # Comprehensions handed straight to an order-insensitive consumer
        # (``sorted(x for x in s)``) cannot leak order: exempt them.
        safe_comprehensions: set[int] = set()
        for node in nodes:
            if isinstance(node, ast.stmt):
                tracker.observe_statement(node)
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_INSENSITIVE_CALLS):
                for arg in node.args:
                    safe_comprehensions.add(id(arg))
        for node in nodes:
            yield from self._check_node(ctx, node, tracker,
                                        safe_comprehensions)

    def _check_node(self, ctx: FileContext, node: ast.AST,
                    tracker: _SetOriginTracker,
                    safe_comprehensions: set[int]) -> Iterator[Finding]:
        message = ("iterates a set whose order is insertion- and "
                   "hash-dependent; wrap in sorted() so downstream "
                   "callbacks/checkpoints/serde stay deterministic")
        if isinstance(node, (ast.For, ast.AsyncFor)) \
                and tracker.is_set_expr(node.iter):
            yield ctx.finding(self.rule_id, node, message)
        elif isinstance(node, (ast.ListComp, ast.DictComp,
                               ast.GeneratorExp)):
            # SetComp output is itself unordered, so iterating a set to
            # build another set cannot leak order — not checked at all.
            if id(node) in safe_comprehensions:
                return
            for gen in node.generators:
                if tracker.is_set_expr(gen.iter):
                    yield ctx.finding(self.rule_id, node, message)
        elif isinstance(node, ast.Call):
            func = node.func
            order_sensitive = (
                (isinstance(func, ast.Name)
                 and func.id in _ORDER_SENSITIVE_CALLS)
                or (isinstance(func, ast.Attribute) and func.attr == "join"))
            if order_sensitive and node.args \
                    and tracker.is_set_expr(node.args[0]):
                yield ctx.finding(self.rule_id, node, message)


# ---------------------------------------------------------------------------
# R006 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque"})


@register
class MutableDefaultArguments(Rule):
    """No mutable default arguments.

    A ``def f(cache={})`` default is created once and shared across every
    call — state leaks between supposedly independent tasks and between
    the two runs the determinism sanitizer compares. Use ``None`` and
    materialize inside the function.
    """

    rule_id = "R006"
    summary = "no mutable default arguments"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                        ast.ListComp, ast.DictComp,
                                        ast.SetComp)):
                    yield ctx.finding(
                        self.rule_id, default,
                        "mutable default argument is shared across calls; "
                        "default to None and materialize in the body")
                elif (isinstance(default, ast.Call)
                      and isinstance(default.func, ast.Name)
                      and default.func.id in _MUTABLE_CALLS):
                    yield ctx.finding(
                        self.rule_id, default,
                        "mutable default argument is shared across calls; "
                        "default to None and materialize in the body")
