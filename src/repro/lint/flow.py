"""reproflow: interprocedural effect-ordering rules (R007–R010).

The paper's design decision #3 — processing semantics as a lattice of
state-saving × output guarantees (Table 8 / Figure 7) — is the invariant
this repo kept re-breaking *dynamically*: the chaos campaigns of PRs 3,
6, and 8 each flushed out the same static shape, an effect (publish,
offset advance, state save, checkpoint numbering) executed in an order
that violates the declared semantics. The per-file rules in
:mod:`repro.lint.rules` cannot see that shape: the publish lives in one
method, the checkpoint three calls away. This module can.

How it works, in three layers:

1. **Effect classification.** Each call site is mapped to an abstract
   effect kind — publish, offset_advance, state_save, checkpoint_commit,
   counter_inc, credit_grant/spend, durable_read — via a small spec
   registry of conventional names (``save_offset``, ``flush_partials``,
   ``save_atomic_with_outputs``, ...), AST heuristics (``*.write`` on a
   writer, ``*.save`` on a checkpoint store), and explicit
   ``# lint: effect[...]`` annotations for ambiguous sites (a bare
   ``client(message)`` callback is a publish only the author can know).

2. **Guarded summaries.** Per module, a call graph over top-level
   functions and methods; each function summarises to a linear sequence
   of effect events, every event tagged with the set of semantics modes
   under which it can execute. Recognised guards
   (``self.semantics.state == StateSemantics.AT_LEAST_ONCE``,
   ``.transactional``, ``.emits_after_checkpoint``, ...) narrow the
   sets; Table 8's closure (exactly-once state ⟺ exactly-once output)
   is re-applied after every narrowing; same-module calls splice the
   callee's summary with the call-site environment intersected in.
   Contradictory environments drop their events, so an
   ``emits_after_checkpoint`` publish never trips the at-least-once
   rules.

3. **Ordering contracts.** R007–R010 below check each summary. Two
   events are only ordered *against each other* when their environments
   are compatible (non-empty intersection on both axes) — events from
   sibling semantics branches cannot shadow one another.

Findings flow through the ordinary engine: pragmas, baseline
fingerprints, JSON output, exit codes. The rules run only under
``--flow`` (or explicit ``--select``) and only over the modules that
implement the delivery protocol (stylus/, swift/, puma/, scribe/,
runtime/topology.py, plus any file opting in with
``# lint: effect[watch]`` — how the regression corpus under
``tests/lint/corpus/`` is covered).

Annotation grammar (comma-separated items inside ``# lint: effect[...]``)::

    # lint: effect[publish]                  calls on this line publish
    # lint: effect[none]                     calls on this line: no effect
    # lint: effect[state=at_least_once]      assumption, on a def/class line
    # lint: effect[output=at_most_once]      (class-level covers methods)
    # lint: effect[restart]                  def line: treat as restart path
    # lint: effect[degraded]                 def line: degraded-mode handler
    # lint: effect[watch]                    anywhere: opt the file in

The analysis is deliberately modest: module-local resolution only
(``self.method()`` and bare-name calls), loops walked once, branches
joined by union. Imprecision lands on the not-flagging side — each rule
requires positive evidence of the *bad* order, not absence of evidence
of the good one.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator

from repro.lint.engine import (FileContext, Finding, Rule, iter_comments,
                               register)

__all__ = [
    "EFFECT_SPECS", "PUBLISH", "OFFSET_ADVANCE", "STATE_SAVE",
    "CHECKPOINT_COMMIT", "COUNTER_INC", "CREDIT_GRANT", "CREDIT_SPEND",
    "DURABLE_READ",
]

# -- effect vocabulary -------------------------------------------------------

PUBLISH = "publish"
OFFSET_ADVANCE = "offset_advance"
STATE_SAVE = "state_save"
CHECKPOINT_COMMIT = "checkpoint_commit"
COUNTER_INC = "counter_inc"
CREDIT_GRANT = "credit_grant"
CREDIT_SPEND = "credit_spend"
DURABLE_READ = "durable_read"

EFFECT_KINDS = frozenset({
    PUBLISH, OFFSET_ADVANCE, STATE_SAVE, CHECKPOINT_COMMIT,
    COUNTER_INC, CREDIT_GRANT, CREDIT_SPEND, DURABLE_READ,
})

#: Terminal callable names whose effect is fixed by convention across
#: the tree. A name listed here is an event at its call sites — its own
#: body is still analysed standalone, but never spliced into callers.
EFFECT_SPECS: dict[str, str] = {
    # offset / ack advancement
    "save_offset": OFFSET_ADVANCE,
    "_checkpoint_offsets": OFFSET_ADVANCE,
    "_save_checkpoint": OFFSET_ADVANCE,
    # state persistence
    "save_state": STATE_SAVE,
    "flush_partials": STATE_SAVE,
    "_save_payload": STATE_SAVE,
    "_save_payload_at_most_once": STATE_SAVE,
    "_flush_state_rows": STATE_SAVE,
    # transactional checkpoint (state + offset + outputs, atomically)
    "save_atomic": CHECKPOINT_COMMIT,
    "save_atomic_with_outputs": CHECKPOINT_COMMIT,
    "flush_partials_atomic": CHECKPOINT_COMMIT,
    "_save_exactly_once": CHECKPOINT_COMMIT,
    # accounting and flow control
    "increment": COUNTER_INC,
    "try_acquire": CREDIT_SPEND,
    "grant": CREDIT_GRANT,
    # durable reads restart paths should derive positions from
    "last_checkpoint_index": DURABLE_READ,
}

#: Semantics values, matching the ``core.semantics`` enum members.
_SEM = ("at_least_once", "at_most_once", "exactly_once")
_FULL = frozenset(_SEM)
_EO = frozenset({"exactly_once"})
_ALO = frozenset({"at_least_once"})
_AMO = frozenset({"at_most_once"})

#: Effects that durably record progress: any of these after a publish
#: means the publish was part of a checkpoint cycle, not fire-and-forget.
_CHECKPOINTISH = (CHECKPOINT_COMMIT, OFFSET_ADVANCE, STATE_SAVE)

_EFFECT_RE = re.compile(r"#\s*lint:\s*effect\[([^\]]+)\]")

#: Directories (under a ``repro`` package dir) that implement the
#: delivery-semantics protocol; everything else is out of scope.
_WATCHED_DIRS = ("stylus", "swift", "puma", "scribe")

_FUNCTION_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


# -- annotations -------------------------------------------------------------

@dataclass
class _Annotations:
    """Parsed ``# lint: effect[...]`` comments for one file."""

    watched: bool
    kinds_by_line: dict[int, tuple[str, ...]]
    none_lines: frozenset[int]
    assumptions_by_line: dict[int, tuple[tuple[str, str], ...]]
    markers_by_line: dict[int, frozenset[str]]


def _parse_annotations(source: str) -> _Annotations:
    watched = False
    kinds: dict[int, list[str]] = {}
    nones: list[int] = []
    assumptions: dict[int, list[tuple[str, str]]] = {}
    markers: dict[int, list[str]] = {}
    for lineno, comment in iter_comments(source):
        match = _EFFECT_RE.search(comment)
        if not match:
            continue
        for item in match.group(1).split(","):
            item = item.strip()
            if not item:
                continue
            if item == "watch":
                watched = True
            elif item == "none":
                nones.append(lineno)
            elif item in ("restart", "degraded"):
                markers.setdefault(lineno, []).append(item)
            elif item in EFFECT_KINDS:
                kinds.setdefault(lineno, []).append(item)
            elif "=" in item:
                axis, _, value = item.partition("=")
                axis = axis.strip()
                value = value.strip()
                if axis in ("state", "output") and value in _SEM:
                    assumptions.setdefault(lineno, []).append((axis, value))
    return _Annotations(
        watched=watched,
        kinds_by_line={line: tuple(found) for line, found in kinds.items()},
        none_lines=frozenset(nones),
        assumptions_by_line={line: tuple(found)
                             for line, found in assumptions.items()},
        markers_by_line={line: frozenset(found)
                         for line, found in markers.items()},
    )


# -- guard environments ------------------------------------------------------

def _close(states: frozenset, outputs: frozenset) -> tuple:
    """Re-apply Table 8's closure: exactly-once is all-or-nothing.

    The common, supported combinations couple exactly-once state with
    exactly-once output (the transaction carries both); once one axis
    rules exactly-once out, so does the other, and once one axis is
    pinned *to* exactly-once the other follows.
    """
    if "exactly_once" not in states:
        outputs = outputs - _EO
    if "exactly_once" not in outputs:
        states = states - _EO
    if states == _EO:
        outputs = outputs & _EO
    if outputs == _EO:
        states = states & _EO
    return states, outputs


def _narrow(env: tuple, atoms: list) -> tuple:
    states, outputs = env
    for axis, values in atoms:
        if axis == "state":
            states = states & values
        else:
            outputs = outputs & values
    return _close(states, outputs)


def _union(left: tuple, right: tuple) -> tuple:
    return (left[0] | right[0], left[1] | right[1])


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` chains; None for anything more dynamic."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _receiver_name(node: ast.AST) -> str:
    """Best-effort name for a call receiver; subscripts unwrap."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return _dotted(node) or ""


def _enum_value(node: ast.AST) -> tuple[str, str] | None:
    """``StateSemantics.AT_LEAST_ONCE`` -> ("state", "at_least_once")."""
    dotted = _dotted(node)
    if not dotted:
        return None
    parts = dotted.split(".")
    if len(parts) < 2:
        return None
    enum_name, member = parts[-2], parts[-1]
    value = member.lower()
    if value not in _SEM:
        return None
    if enum_name == "StateSemantics":
        return ("state", value)
    if enum_name == "OutputSemantics":
        return ("output", value)
    return None


def _atoms_from_test(test: ast.AST) -> tuple[list, bool]:
    """Semantic atoms a test implies when true.

    Returns ``(atoms, invertible)``: atoms is a list of
    ``(axis, values)`` narrowings; invertible means the false branch may
    be narrowed with the complement (only single recognised atoms are).
    """
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        atoms, invertible = _atoms_from_test(test.operand)
        if invertible and len(atoms) == 1:
            axis, values = atoms[0]
            return [(axis, _FULL - values)], True
        return [], False
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        collected: list = []
        for value in test.values:
            sub, _ = _atoms_from_test(value)
            collected.extend(sub)
        # `a and b` narrows the true branch by every recognised atom,
        # but its negation narrows nothing (could be either conjunct).
        return collected, False
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        op = test.ops[0]
        if isinstance(op, (ast.Eq, ast.Is, ast.NotEq, ast.IsNot)):
            sides = (test.left, test.comparators[0])
            for subject, other in (sides, sides[::-1]):
                enum = _enum_value(other)
                if enum is None:
                    continue
                dotted = _dotted(subject) or ""
                if "semantics" not in dotted:
                    continue
                axis, value = enum
                values = frozenset({value})
                if isinstance(op, (ast.NotEq, ast.IsNot)):
                    values = _FULL - values
                return [(axis, values)], True
        return [], False
    dotted = _dotted(test) or ""
    if dotted.endswith("emits_before_checkpoint"):
        return [("output", _ALO)], True
    if dotted.endswith("emits_after_checkpoint"):
        return [("output", _AMO)], True
    if dotted.endswith("transactional"):
        return [("state", _EO)], True
    return [], False


def _narrow_false(env: tuple, atoms: list, invertible: bool) -> tuple:
    if invertible and len(atoms) == 1:
        axis, values = atoms[0]
        return _narrow(env, [(axis, _FULL - values)])
    return env


# -- module index ------------------------------------------------------------

@dataclass
class _Func:
    """One analysable function/method and its assumed environment."""

    qualname: str
    node: ast.AST
    cls: str | None
    env0: tuple
    markers: frozenset[str]


@dataclass
class _ModuleIndex:
    ann: _Annotations
    functions: dict[str, _Func]
    counters: list[tuple[str, int]]  # (metric name literal, lineno)


def _initial_env(ann: _Annotations, lines: tuple[int, ...]) -> tuple:
    env = (_FULL, _FULL)
    for lineno in lines:
        atoms = [(axis, frozenset({value}))
                 for axis, value in ann.assumptions_by_line.get(lineno, ())]
        if atoms:
            env = _narrow(env, atoms)
    return env


def _build_index(ctx: FileContext) -> _ModuleIndex:
    ann = _parse_annotations(ctx.source)
    functions: dict[str, _Func] = {}

    def add(node: ast.AST, cls: str | None, cls_line: int | None) -> None:
        qualname = f"{cls}.{node.name}" if cls else node.name
        lines = ((cls_line, node.lineno) if cls_line is not None
                 else (node.lineno,))
        markers = ann.markers_by_line.get(node.lineno, frozenset())
        functions[qualname] = _Func(
            qualname=qualname, node=node, cls=cls,
            env0=_initial_env(ann, lines), markers=markers)

    for node in ctx.tree.body:
        if isinstance(node, _FUNCTION_DEFS):
            add(node, None, None)
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, _FUNCTION_DEFS):
                    add(child, node.name, node.lineno)

    counters: list[tuple[str, int]] = []
    for node in ast.walk(ctx.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "counter" and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            counters.append((node.args[0].value, node.lineno))
    return _ModuleIndex(ann=ann, functions=functions, counters=counters)


def _module_state(ctx: FileContext) -> tuple:
    """Index + summarizer, built once per file and shared by all rules."""
    state = getattr(ctx, "_flow_state", None)
    if state is None:
        index = _build_index(ctx)
        state = (index, _Summarizer(index))
        ctx._flow_state = state
    return state


def _watched(ctx: FileContext, index: _ModuleIndex) -> bool:
    if index.ann.watched:
        return True
    if ctx.path_endswith("repro/runtime/topology.py"):
        return True
    parts = ctx.path.split("/")
    if "repro" not in parts:
        return False
    return any(name in parts[:-1] for name in _WATCHED_DIRS)


# -- effect summaries --------------------------------------------------------

@dataclass(frozen=True)
class _Event:
    """One abstract effect, tagged with when it can execute."""

    kind: str
    lineno: int
    states: frozenset
    outputs: frozenset
    detail: str = ""


def _compatible(left: _Event, right: _Event) -> bool:
    """Can the two events occur in the same run of the program?

    Events from sibling semantics branches have disjoint environments on
    some axis; ordering them against each other would be meaningless.
    """
    return bool(left.states & right.states and left.outputs & right.outputs)


def _classify_name(name: str, receiver: str) -> str | None:
    if name in EFFECT_SPECS:
        return EFFECT_SPECS[name]
    if name.startswith("_emit") or name in ("emit", "publish"):
        return PUBLISH
    if name == "write" and "writer" in receiver:
        return PUBLISH
    if name == "save" and "checkpoint" in receiver:
        return OFFSET_ADVANCE
    if name == "load" and ("state_backend" in receiver
                           or "checkpoint" in receiver):
        return DURABLE_READ
    return None


def _terminated(stmts: list) -> bool:
    if not stmts:
        return False
    return isinstance(stmts[-1], (ast.Return, ast.Raise, ast.Break,
                                  ast.Continue))


class _Summarizer:
    """Computes memoised per-function effect summaries."""

    _MAX_DEPTH = 12

    def __init__(self, index: _ModuleIndex) -> None:
        self.index = index
        self._memo: dict[str, list[_Event]] = {}
        self._stack: list[str] = []

    def summary(self, qualname: str) -> list[_Event]:
        if qualname in self._memo:
            return self._memo[qualname]
        if qualname in self._stack or len(self._stack) > self._MAX_DEPTH:
            return []  # recursion or runaway depth: stop splicing
        func = self.index.functions[qualname]
        self._stack.append(qualname)
        try:
            events, _ = self._block(func.node.body, func.env0, func)
        finally:
            self._stack.pop()
        self._memo[qualname] = events
        return events

    # ---- statement walking

    def _block(self, stmts: list, env: tuple, func: _Func) -> tuple:
        events: list[_Event] = []
        for stmt in stmts:
            if isinstance(stmt, (*_FUNCTION_DEFS, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                events.extend(self._calls(stmt.test, env, func))
                atoms, invertible = _atoms_from_test(stmt.test)
                env_true = _narrow(env, atoms)
                env_false = _narrow_false(env, atoms, invertible)
                ev_t, out_t = self._block(stmt.body, env_true, func)
                ev_f, out_f = self._block(stmt.orelse, env_false, func)
                events.extend(ev_t)
                events.extend(ev_f)
                term_t = _terminated(stmt.body)
                term_f = bool(stmt.orelse) and _terminated(stmt.orelse)
                if term_t and not term_f:
                    env = out_f
                elif term_f and not term_t:
                    env = out_t
                else:
                    env = _union(out_t, out_f)
                continue
            if isinstance(stmt, ast.Try):
                ev, env = self._block(stmt.body, env, func)
                events.extend(ev)
                for handler in stmt.handlers:
                    ev, env = self._block(handler.body, env, func)
                    events.extend(ev)
                ev, env = self._block(stmt.orelse, env, func)
                events.extend(ev)
                ev, env = self._block(stmt.finalbody, env, func)
                events.extend(ev)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                events.extend(self._calls(stmt.iter, env, func))
                ev, out = self._block(stmt.body, env, func)  # one trip
                events.extend(ev)
                ev, out = self._block(stmt.orelse, _union(env, out), func)
                events.extend(ev)
                env = out
                continue
            if isinstance(stmt, ast.While):
                events.extend(self._calls(stmt.test, env, func))
                ev, out = self._block(stmt.body, env, func)
                events.extend(ev)
                env = _union(env, out)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    events.extend(self._calls(item.context_expr, env, func))
                ev, env = self._block(stmt.body, env, func)
                events.extend(ev)
                continue
            events.extend(self._calls(stmt, env, func))
        return events, env

    def _calls(self, node: ast.AST, env: tuple, func: _Func) -> list:
        events: list[_Event] = []
        found = [n for n in ast.walk(node) if isinstance(n, ast.Call)]
        found.sort(key=lambda n: (n.lineno, n.col_offset))
        for call in found:
            events.extend(self._classify(call, env, func))
        return events

    # ---- call classification

    def _classify(self, call: ast.Call, env: tuple, func: _Func) -> list:
        if not env[0] or not env[1]:
            return []  # contradictory environment: dead branch
        ann = self.index.ann
        lineno = call.lineno
        if lineno in ann.none_lines:
            return []
        if lineno in ann.kinds_by_line:
            return [_Event(kind, lineno, env[0], env[1], "annotated")
                    for kind in ann.kinds_by_line[lineno]]
        target = call.func
        # Retrier-style indirection: `self._retrier.call(f, ...)` — the
        # effect is f's, the wrapper only retries it.
        if (isinstance(target, ast.Attribute) and target.attr == "call"
                and call.args
                and isinstance(call.args[0], (ast.Attribute, ast.Name))):
            target = call.args[0]
        if isinstance(target, ast.Attribute):
            name = target.attr
            receiver = _receiver_name(target.value)
        elif isinstance(target, ast.Name):
            name = target.id
            receiver = ""
        else:
            return []
        kind = _classify_name(name, receiver)
        if kind is not None:
            return [_Event(kind, lineno, env[0], env[1], name)]
        return self._splice(name, receiver, env, func)

    def _splice(self, name: str, receiver: str, env: tuple,
                func: _Func) -> list:
        """Inline a same-module callee's summary at the call site."""
        if receiver in ("self", "cls") and func.cls:
            qualname = f"{func.cls}.{name}"
        elif not receiver:
            qualname = name
        else:
            return []
        if qualname not in self.index.functions:
            return []
        spliced: list[_Event] = []
        for event in self.summary(qualname):
            states, outputs = _close(event.states & env[0],
                                     event.outputs & env[1])
            if states and outputs:
                spliced.append(_Event(event.kind, event.lineno,
                                      states, outputs, event.detail))
        return spliced


# -- the rules ---------------------------------------------------------------

class _At:
    """Minimal lineno holder for :meth:`FileContext.finding`."""

    def __init__(self, lineno: int) -> None:
        self.lineno = lineno


class FlowRule(Rule):
    """Shared driver: index the module once, check every summary."""

    flow = True

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        index, summarizer = _module_state(ctx)
        if not _watched(ctx, index):
            return
        emitted: set[tuple[int, str]] = set()
        for qualname in sorted(index.functions):
            func = index.functions[qualname]
            for finding in self._check_function(ctx, func, summarizer):
                key = (finding.line, finding.message)
                if key not in emitted:
                    emitted.add(key)
                    yield finding

    def _check_function(self, ctx: FileContext, func: _Func,
                        summarizer: _Summarizer) -> Iterator[Finding]:
        return iter(())


@register
class ExactlyOncePublishOrder(FlowRule):
    """R007: exactly-once output rides *inside* the checkpoint
    transaction — a publish that can run under exactly-once semantics
    before the transactional commit breaks the no-duplicates contract
    the moment the task crashes between the two."""

    rule_id = "R007"
    summary = ("exactly-once output must not publish before the "
               "transactional checkpoint commits")

    def _check_function(self, ctx, func, summarizer):
        events = summarizer.summary(func.qualname)
        for position, event in enumerate(events):
            if event.kind != PUBLISH or "exactly_once" not in event.outputs:
                continue
            if any(prior.kind == CHECKPOINT_COMMIT
                   and _compatible(prior, event)
                   for prior in events[:position]):
                continue
            if any(later.kind in _CHECKPOINTISH
                   and _compatible(later, event)
                   for later in events[position + 1:]):
                yield ctx.finding(self.rule_id, _At(event.lineno), (
                    "publish reachable under exactly-once output before "
                    "the transactional checkpoint commits; exactly-once "
                    "output is emitted by the transaction "
                    "(save_atomic_with_outputs), never ahead of it"))


@register
class SemanticsSaveOrder(FlowRule):
    """R008: the two non-transactional modes each fix a save order.
    At-least-once persists state *before* acking offsets (crash between
    them re-reads input, which folding absorbs); at-most-once advances
    offsets *before* any side effect (crash between them skips input,
    which is the contract — replaying it is not)."""

    rule_id = "R008"
    summary = ("at-least-once saves state before acking offsets; "
               "at-most-once advances offsets before side effects")

    def _check_function(self, ctx, func, summarizer):
        events = summarizer.summary(func.qualname)
        for position, event in enumerate(events):
            prior = events[:position]
            if event.kind == OFFSET_ADVANCE and event.states == _ALO:
                if any(p.kind in (STATE_SAVE, CHECKPOINT_COMMIT)
                       and _compatible(p, event) for p in prior):
                    continue
                if any(later.kind == STATE_SAVE and _compatible(later, event)
                       for later in events[position + 1:]):
                    yield ctx.finding(self.rule_id, _At(event.lineno), (
                        "at-least-once state: offset acked before the "
                        "state save; a crash between them loses input "
                        "the offset already acknowledged"))
            elif event.kind == STATE_SAVE and event.states == _AMO:
                if not any(p.kind in (OFFSET_ADVANCE, CHECKPOINT_COMMIT)
                           and _compatible(p, event) for p in prior):
                    yield ctx.finding(self.rule_id, _At(event.lineno), (
                        "at-most-once state: state saved before the "
                        "offset advance; a crash between them replays "
                        "and double-counts input"))
            elif event.kind == PUBLISH and event.outputs == _AMO:
                if not any(p.kind in (OFFSET_ADVANCE, CHECKPOINT_COMMIT)
                           and _compatible(p, event) for p in prior):
                    yield ctx.finding(self.rule_id, _At(event.lineno), (
                        "at-most-once output: publish before the offset "
                        "advance; on replay this re-emits history that "
                        "was already published"))


@register
class PairedCounterConservation(FlowRule):
    """R009: accounting must be conservative. A ``*.granted`` credit
    counter with no ``*.blocked``/``*.reconciled`` partner cannot
    balance, and a degraded-mode handler that increments no counter
    makes its degradation invisible to the chaos campaigns."""

    rule_id = "R009"
    summary = ("credit counters stay paired (granted needs blocked or "
               "reconciled); degraded-mode handlers must count")

    _DEGRADED_TOKENS = ("defer", "fallback", "degraded")

    def __init__(self) -> None:
        self._granted: list[tuple[str, int, str, str]] = []
        self._names: set[str] = set()

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        index, summarizer = _module_state(ctx)
        if not _watched(ctx, index):
            return
        for name, lineno in index.counters:
            self._names.add(name)
            if name.endswith(".granted"):
                self._granted.append((ctx.path, lineno, name,
                                      ctx.line_text(lineno).strip()))
        for qualname in sorted(index.functions):
            func = index.functions[qualname]
            if not self._degraded_like(func):
                continue
            events = summarizer.summary(func.qualname)
            if not any(event.kind == COUNTER_INC for event in events):
                yield ctx.finding(self.rule_id, func.node, (
                    f"degraded-mode handler {func.node.name!r} increments "
                    "no counter; the degradation is invisible to chaos "
                    "accounting"))

    def _degraded_like(self, func: _Func) -> bool:
        if "degraded" in func.markers:
            return True
        return any(token in func.node.name
                   for token in self._DEGRADED_TOKENS)

    def finalize(self) -> Iterator[Finding]:
        for path, lineno, name, snippet in sorted(self._granted):
            prefix = name[:-len(".granted")]
            if (f"{prefix}.blocked" in self._names
                    or f"{prefix}.reconciled" in self._names):
                continue
            yield Finding(
                rule=self.rule_id, path=path, line=lineno,
                message=(f"credit counter {name!r} has no paired "
                         f"'{prefix}.blocked' or '{prefix}.reconciled' "
                         "counter; granted credits must be conserved "
                         "somewhere"),
                snippet=snippet)


@register
class RestartDerivesFromDurableState(FlowRule):
    """R010: restart/recovery/adoption paths derive checkpoint numbering
    and resume offsets from durable state — a literal 0 rewinds an
    at-least-once consumer to trimmed history (PR 3) or makes an adopted
    exactly-once task overwrite the previous owner's committed rows
    (PR 8)."""

    rule_id = "R010"
    summary = ("restart paths derive checkpoint numbering and resume "
               "offsets from durable state, never a literal 0")

    _RESTART_TOKENS = ("resume", "recover", "adopt")
    _POSITION_NAMES = ("checkpoint_index", "next_offset")
    _SEEK_NAMES = ("seek", "save_offset", "_save_checkpoint")

    def _check_function(self, ctx, func, summarizer):
        if not self._restart_like(func):
            return
        for node in ast.walk(func.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                yield from self._check_assign(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _restart_like(self, func: _Func) -> bool:
        if "restart" in func.markers:
            return True
        name = func.node.name
        if name in ("restart", "_restart"):
            return True
        return any(token in name for token in self._RESTART_TOKENS)

    def _check_assign(self, ctx, node):
        if not _is_zero(node.value):
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            for leaf in ast.walk(target):
                name = None
                if isinstance(leaf, ast.Attribute):
                    name = leaf.attr
                elif isinstance(leaf, ast.Name):
                    name = leaf.id
                if name and any(tok in name for tok in self._POSITION_NAMES):
                    yield ctx.finding(self.rule_id, node, (
                        f"restart path pins {name!r} to literal 0; derive "
                        "it from durable state (state_backend.load / "
                        "last_checkpoint_index / the saved checkpoint) so "
                        "a restarted or adopted task resumes where the "
                        "previous owner committed"))
                    return

    def _check_call(self, ctx, node):
        target = node.func
        name = None
        if isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Name):
            name = target.id
        if (name in self._SEEK_NAMES and node.args
                and _is_zero(node.args[0])):
            yield ctx.finding(self.rule_id, node, (
                f"restart path calls {name}(0); resume from the saved "
                "checkpoint (or the first retained offset), not absolute "
                "zero — offset 0 may be trimmed or already processed"))


def _is_zero(node: ast.AST | None) -> bool:
    return (isinstance(node, ast.Constant) and node.value == 0
            and node.value is not False)
