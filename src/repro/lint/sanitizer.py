"""Determinism sanitizer: one seeded campaign, run twice, diffed.

The static rules (R001-R006) exist so that a seeded experiment is a pure
function of its seed. This module is the runtime check of that claim: it
builds a small end-to-end world — Scribe in, two Stylus counter tasks,
local LSM state with HDFS backups, a chaos schedule of outages and
partitions — runs it to completion twice from fresh state, and compares

- the full metric snapshot (every counter/gauge/timer, via
  :meth:`~repro.runtime.metrics.MetricsRegistry.digest`),
- every Scribe bucket's ``(first_retained, end)`` offsets,
- a digest of every task's durable Stylus state ``(state, offset)``.

Any divergence means some component read wall clock, the global random
generator, or unordered-iteration order — exactly what the static rules
forbid — and raises/reports :class:`~repro.errors.DeterminismViolation`.

Within one process, set iteration order is stable, so the double run
mostly guards clock/randomness leaks; ``PYTHONHASHSEED``-dependent
iteration is caught by comparing the printed digest *across* processes —
CI runs ``python -m repro.lint --sanitize`` twice and diffs the output.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.event import Event
from repro.core.semantics import SemanticsPolicy
from repro.errors import DeterminismViolation
from repro.runtime.clock import SimClock
from repro.runtime.failures import FailurePlan, Network
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.retry import RetryPolicy
from repro.runtime.rng import make_rng
from repro.runtime.scheduler import Scheduler
from repro.scribe.store import ScribeStore
from repro.storage.backup import BackupEngine
from repro.storage.hdfs import HdfsBlobStore
from repro.storage.merge import DictSumMergeOperator
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusTask
from repro.stylus.processor import Output, StatefulProcessor
from repro.stylus.state import LocalDbStateBackend

__all__ = ["SanitizerReport", "SanitizerRun", "run_once", "run_sanitizer",
           "format_report"]

_TOTAL_EVENTS = 160
_HORIZON = 90.0
_BUCKETS = 2
_RETRY = RetryPolicy(max_attempts=3, base_delay=0.5, multiplier=2.0,
                     max_delay=4.0, jitter=0.1)


class _DimensionSum(StatefulProcessor):
    """Counts events and sums a payload value per dimension — enough
    state shape (nested dict, float accumulation) to expose ordering or
    float-accumulation divergence in the digest."""

    def initial_state(self):
        return {"count": 0, "dims": {}}

    def process(self, event: Event, state) -> list[Output]:
        state["count"] += 1
        dim = f"dim{int(event['seq']) % 7}"
        state["dims"][dim] = state["dims"].get(dim, 0.0) + float(
            event["value"])
        return []

    def on_checkpoint(self, state, now: float) -> list[Output]:
        return [Output({"event_time": now, "count": state["count"]})]


def _canonical_digest(payload: object) -> str:
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                         default=repr)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SanitizerRun:
    """Everything one campaign run exposes for comparison."""

    metrics_digest: str
    metrics_snapshot: dict[str, float]
    scribe_offsets: dict[str, tuple[int, int]]
    state_digests: dict[str, str]

    def combined_digest(self) -> str:
        return _canonical_digest({
            "metrics": self.metrics_digest,
            "offsets": {k: list(v) for k, v in self.scribe_offsets.items()},
            "state": self.state_digests,
        })


def run_once(seed: int = 0) -> SanitizerRun:
    """Build a fresh seeded world, run the campaign, return its digests."""
    clock = SimClock()
    scheduler = Scheduler(clock)
    metrics = MetricsRegistry(clock)
    network = Network()
    scribe = ScribeStore(clock=clock, delivery_delay=0.5, metrics=metrics)
    scribe.create_category("events", _BUCKETS)
    hdfs = HdfsBlobStore(clock=clock, metrics=metrics, name="hdfs",
                         network=network, link=("app", "hdfs"))
    engine = BackupEngine(hdfs, retry=_RETRY, metrics=metrics)

    payload_rng = make_rng(seed, "sanitizer-payload")
    tasks: list[StylusTask] = []
    backends: list[LocalDbStateBackend] = []
    for bucket in range(_BUCKETS):
        backend = LocalDbStateBackend(f"sanitizer{bucket}", {},
                                      backup_engine=engine,
                                      merge_operator=DictSumMergeOperator())
        backends.append(backend)
        tasks.append(StylusTask(
            f"sanitizer{bucket}", scribe, "events", bucket, _DimensionSum(),
            semantics=SemanticsPolicy.at_least_once(), state_backend=backend,
            checkpoint_policy=CheckpointPolicy(every_n_events=16),
            clock=clock, metrics=metrics, retry_policy=_RETRY))

    written = [0]

    def feed() -> None:
        for _ in range(6):
            if written[0] >= _TOTAL_EVENTS:
                return
            scribe.write_record(
                "events",
                {"event_time": clock.now(), "seq": written[0],
                 "value": round(payload_rng.uniform(0.0, 10.0), 6)},
                key=str(written[0]))
            written[0] += 1

    scheduler.every(1.5, feed)
    scheduler.every(7.0, lambda: scribe.snapshot_to(hdfs, retry=_RETRY))
    for backend in backends:
        scheduler.every(9.0, backend.maybe_backup)
    scheduler.every(11.0, scribe.run_retention)

    def pump_all() -> None:
        for task in tasks:
            task.pump(50)

    scheduler.every(2.0, pump_all)

    plan = FailurePlan.random_chaos(
        _HORIZON - 10.0, make_rng(seed, "sanitizer-chaos"),
        stores=("hdfs",), links=[("app", "hdfs")],
        outage_rate=0.05, mean_outage=4.0,
        partition_rate=0.04, mean_partition=3.0)
    plan.install(scheduler, stores={"hdfs": hdfs}, network=network)

    scheduler.run_until(_HORIZON)

    # Fault-free tail: heal, drain every task, land a final checkpoint.
    network.heal_all()
    hdfs.set_available(True)
    clock.advance(1.0)  # past the delivery delay of the last writes
    for task in tasks:
        while task.lag_messages() > 0:
            task.pump(10_000)
        task.checkpoint_now()

    offsets: dict[str, tuple[int, int]] = {}
    for category in scribe.categories():
        for bucket in range(scribe.category(category).num_buckets):
            offsets[f"{category}[{bucket}]"] = (
                scribe.first_retained_offset(category, bucket),
                scribe.end_offset(category, bucket),
            )
    state_digests = {
        task.name: _canonical_digest(list(backend.load()))
        for task, backend in zip(tasks, backends)
    }
    return SanitizerRun(metrics_digest=metrics.digest(),
                        metrics_snapshot=metrics.snapshot(),
                        scribe_offsets=offsets,
                        state_digests=state_digests)


@dataclass
class SanitizerReport:
    """Outcome of the double run."""

    seed: int
    runs: int
    combined_digest: str
    differences: list[str] = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        return not self.differences


def _diff_runs(first: SanitizerRun, other: SanitizerRun,
               label: str) -> list[str]:
    differences: list[str] = []
    keys = sorted(first.metrics_snapshot.keys()
                  | other.metrics_snapshot.keys())
    for key in keys:
        a = first.metrics_snapshot.get(key)
        b = other.metrics_snapshot.get(key)
        if a != b:
            differences.append(f"{label}: metric {key!r}: {a!r} != {b!r}")
    for key in sorted(first.scribe_offsets.keys()
                      | other.scribe_offsets.keys()):
        a = first.scribe_offsets.get(key)
        b = other.scribe_offsets.get(key)
        if a != b:
            differences.append(
                f"{label}: scribe offsets {key}: {a!r} != {b!r}")
    for key in sorted(first.state_digests.keys()
                      | other.state_digests.keys()):
        a = first.state_digests.get(key)
        b = other.state_digests.get(key)
        if a != b:
            differences.append(
                f"{label}: stylus state digest {key}: {a} != {b}")
    return differences


def run_sanitizer(seed: int = 0, runs: int = 2,
                  raise_on_divergence: bool = False) -> SanitizerReport:
    """Run the campaign ``runs`` times from fresh state and compare.

    Returns a report; with ``raise_on_divergence`` a mismatch raises
    :class:`~repro.errors.DeterminismViolation` naming the first
    diverging keys instead.
    """
    if runs < 2:
        raise ValueError("sanitizer needs at least two runs to compare")
    results = [run_once(seed) for _ in range(runs)]
    differences: list[str] = []
    for index, result in enumerate(results[1:], start=2):
        differences.extend(_diff_runs(results[0], result,
                                      f"run1 vs run{index}"))
    report = SanitizerReport(seed=seed, runs=runs,
                             combined_digest=results[0].combined_digest(),
                             differences=differences)
    if differences and raise_on_divergence:
        preview = "; ".join(differences[:5])
        raise DeterminismViolation(
            f"seeded campaign diverged across {runs} runs (seed={seed}): "
            f"{preview}")
    return report


def format_report(report: SanitizerReport) -> str:
    lines = [
        f"sanitizer: seed={report.seed} runs={report.runs} "
        f"digest={report.combined_digest}",
    ]
    if report.deterministic:
        lines.append("sanitizer: PASS — runs byte-identical (metrics, "
                     "scribe offsets, stylus state)")
    else:
        lines.extend(f"sanitizer: DIVERGED {diff}"
                     for diff in report.differences[:20])
        remaining = len(report.differences) - 20
        if remaining > 0:
            lines.append(f"sanitizer: ... and {remaining} more difference(s)")
        lines.append("sanitizer: FAIL")
    return "\n".join(lines)
