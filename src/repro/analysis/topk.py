"""SpaceSaving: mergeable top-K / heavy-hitters sketch.

Metwally et al.'s SpaceSaving algorithm with the standard merge: sum
counters for shared keys, carry over the others, and re-truncate to
capacity. Counts are upper bounds; ``error`` tracks the possible
overestimate per key. Used by the Chorus trending pipeline to keep the
top topics without holding every topic's counter.
"""

from __future__ import annotations

from typing import Any, Hashable


class SpaceSaving:
    """Fixed-capacity counter set with guaranteed heavy-hitter coverage."""

    def __init__(self, capacity: int = 100) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._counts: dict[Hashable, float] = {}
        self._errors: dict[Hashable, float] = {}
        self.total = 0.0

    def add(self, key: Hashable, weight: float = 1.0) -> None:
        """Count ``key``; evict the current minimum when at capacity."""
        if weight < 0:
            raise ValueError("weights must be non-negative")
        self.total += weight
        if key in self._counts:
            self._counts[key] += weight
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = weight
            self._errors[key] = 0.0
            return
        victim = min(self._counts, key=self._counts.__getitem__)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + weight
        self._errors[key] = floor

    def top(self, k: int) -> list[tuple[Hashable, float]]:
        """The top-``k`` (key, estimated count) pairs, descending."""
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return ranked[:k]

    def count(self, key: Hashable) -> float:
        """The (upper-bound) count estimate for ``key``; 0 if untracked."""
        return self._counts.get(key, 0.0)

    def guaranteed(self, key: Hashable) -> float:
        """A lower bound on the true count of ``key``."""
        return self._counts.get(key, 0.0) - self._errors.get(key, 0.0)

    # -- monoid structure -------------------------------------------------------

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Combine two sketches (capacity = max of the two)."""
        merged = SpaceSaving(max(self.capacity, other.capacity))
        merged.total = self.total + other.total
        counts: dict[Hashable, float] = dict(self._counts)
        errors: dict[Hashable, float] = dict(self._errors)
        for key, count in other._counts.items():
            counts[key] = counts.get(key, 0.0) + count
            errors[key] = errors.get(key, 0.0) + other._errors[key]
        survivors = sorted(counts, key=lambda k: -counts[k])[:merged.capacity]
        merged._counts = {key: counts[key] for key in survivors}
        merged._errors = {key: errors[key] for key in survivors}
        return merged

    # -- serialization -------------------------------------------------------------

    def to_state(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "total": self.total,
            "counts": {str(k): v for k, v in self._counts.items()},
            "errors": {str(k): v for k, v in self._errors.items()},
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "SpaceSaving":
        sketch = cls(state["capacity"])
        sketch.total = state["total"]
        sketch._counts = dict(state["counts"])
        sketch._errors = dict(state["errors"])
        return sketch

    def __len__(self) -> int:
        return len(self._counts)
