"""Approximate analytics sketches.

"Good approximate unique counts (computed with HyperLogLog) are often as
actionable as exact numbers" (Section 6.5). Puma's ``approx_distinct``
aggregation uses :class:`~repro.analysis.hll.HyperLogLog`; the Chorus
example tracks trending topics with
:class:`~repro.analysis.topk.SpaceSaving`. Both sketches are mergeable
(monoids), so they compose with Puma/Stylus checkpointing and with
map-side partial aggregation in backfill.
"""

from repro.analysis.hll import HyperLogLog
from repro.analysis.topk import SpaceSaving

__all__ = ["HyperLogLog", "SpaceSaving"]
