"""HyperLogLog: mergeable approximate distinct counting.

Standard HLL (Flajolet et al.) with the small-range linear-counting
correction. Register precision ``p`` gives ``m = 2**p`` registers and a
relative standard error of about ``1.04 / sqrt(m)`` (~1.6% at the
default p=12).

The sketch is a monoid: ``merge`` is register-wise max, associative and
commutative with the empty sketch as identity — which is exactly what
Puma needs to checkpoint it and what backfill needs to combine map-side
partials.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Iterable

from repro.errors import ConfigError


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """A fixed-precision HLL sketch."""

    def __init__(self, precision: int = 12) -> None:
        if not 4 <= precision <= 18:
            raise ConfigError("precision must be in [4, 18]")
        self.precision = precision
        self.m = 1 << precision
        self.registers = bytearray(self.m)

    # -- updates -----------------------------------------------------------

    def add(self, value: Any) -> None:
        """Add one item (hashed by its string form)."""
        digest = hashlib.sha1(str(value).encode("utf-8")).digest()
        hashed = int.from_bytes(digest[:8], "big")
        index = hashed >> (64 - self.precision)
        remainder = hashed & ((1 << (64 - self.precision)) - 1)
        # Rank: position of the leftmost 1-bit in the remaining bits, 1-based.
        rank = (64 - self.precision) - remainder.bit_length() + 1
        if remainder == 0:
            rank = 64 - self.precision + 1
        if rank > self.registers[index]:
            self.registers[index] = rank

    def add_all(self, values: Iterable[Any]) -> None:
        for value in values:
            self.add(value)

    # -- estimation -----------------------------------------------------------

    def cardinality(self) -> float:
        """The distinct-count estimate."""
        total = 0.0
        zeros = 0
        for register in self.registers:
            total += 2.0 ** -register
            if register == 0:
                zeros += 1
        raw = _alpha(self.m) * self.m * self.m / total
        if raw <= 2.5 * self.m and zeros:
            # Small-range correction: linear counting.
            return self.m * math.log(self.m / zeros)
        return raw

    def relative_error(self) -> float:
        """The theoretical standard error for this precision."""
        return 1.04 / math.sqrt(self.m)

    # -- monoid structure -----------------------------------------------------------

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Union of the two underlying sets (register-wise max)."""
        if other.precision != self.precision:
            raise ConfigError(
                f"cannot merge precisions {self.precision} and "
                f"{other.precision}"
            )
        merged = HyperLogLog(self.precision)
        merged.registers = bytearray(
            max(a, b) for a, b in zip(self.registers, other.registers)
        )
        return merged

    def copy(self) -> "HyperLogLog":
        clone = HyperLogLog(self.precision)
        clone.registers = bytearray(self.registers)
        return clone

    # -- serialization (checkpoint-friendly plain types) ----------------------------

    def to_state(self) -> dict[str, Any]:
        return {
            "precision": self.precision,
            "registers": self.registers.hex(),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "HyperLogLog":
        sketch = cls(state["precision"])
        sketch.registers = bytearray.fromhex(state["registers"])
        if len(sketch.registers) != sketch.m:
            raise ConfigError("corrupt HLL state: wrong register count")
        return sketch

    def __len__(self) -> int:
        return round(self.cardinality())
