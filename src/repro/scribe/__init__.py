"""Scribe: the persistent, replayable message bus (paper Section 2.1).

Scribe is the paper's central design choice — "persistent storage based
message transfer" (Section 4.2). Data is organized into **categories**
(distinct streams); each category has multiple **buckets**, the unit of
parallelism. Messages are durable for a retention window and can be
replayed from any retained offset by any number of independent readers.

Key behaviours reproduced here:

- writers and readers are fully decoupled: a slow or dead reader never
  applies back pressure to the writer;
- the same data can be read multiple times (replay for debugging, duplicate
  downstream tiers for disaster recovery);
- a configurable per-message delivery delay models Scribe's ~1 second
  minimum latency;
- retention trimming models Scribe's "up to a few days" storage.
"""

from repro.scribe.bucket import Bucket
from repro.scribe.category import Category
from repro.scribe.checkpoints import CheckpointStore
from repro.scribe.message import Message
from repro.scribe.reader import CategoryReader, ScribeReader
from repro.scribe.store import ScribeStore
from repro.scribe.writer import ScribeWriter

__all__ = [
    "Bucket",
    "Category",
    "CategoryReader",
    "CheckpointStore",
    "Message",
    "ScribeReader",
    "ScribeStore",
    "ScribeWriter",
]
