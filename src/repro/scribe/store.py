"""The Scribe service: category registry plus write/read entry points."""

from __future__ import annotations

import zlib
from typing import Any, Mapping

from repro import serde
from repro.errors import Backpressure, BackupNotFound, ConfigError, \
    StoreUnavailable, UnknownCategory
from repro.runtime.clock import Clock, WallClock
from repro.runtime.metrics import Counter, MetricsRegistry
from repro.runtime.retry import Retrier, RetryPolicy
from repro.scribe.bucket import Bucket
from repro.scribe.category import Category
from repro.scribe.flow import CreditGate
from repro.scribe.message import Message


def default_bucketer(key: str, num_buckets: int) -> int:
    """Stable hash partitioning of a shard key onto a bucket index.

    Uses crc32 rather than ``hash()`` so results are stable across
    processes and Python releases (``PYTHONHASHSEED`` does not apply).
    """
    return zlib.crc32(key.encode("utf-8")) % num_buckets


class ScribeStore:
    """An in-process Scribe deployment.

    One store instance plays the role of the whole Scribe tier: it owns
    every category, applies retention, and models the bus's delivery
    latency (messages become visible ``delivery_delay`` seconds after they
    are written — the paper's "minimum latency of about a second per
    stream", Section 4.2.2).
    """

    def __init__(self, clock: Clock | None = None,
                 delivery_delay: float = 0.0,
                 metrics: MetricsRegistry | None = None) -> None:
        if delivery_delay < 0:
            raise ConfigError("delivery_delay must be >= 0")
        self.clock = clock if clock is not None else WallClock()
        self.delivery_delay = delivery_delay
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._categories: dict[str, Category] = {}
        # Per-category (messages, bytes) counter handles, resolved once:
        # the write path must not pay an f-string + registry lookup per
        # message (Figure 9 is about exactly this kind of per-event tax).
        self._write_counters: dict[str, tuple[Counter, Counter]] = {}
        # Credit gates for categories with backpressure enabled. Empty
        # for most stores; the write path guards on the dict itself so
        # ungated deployments pay nothing.
        self._gates: dict[str, CreditGate] = {}

    # -- category management -------------------------------------------------

    def create_category(self, name: str, num_buckets: int = 1,
                        retention_seconds: float = 3 * 24 * 3600.0) -> Category:
        if name in self._categories:
            raise ConfigError(f"category {name!r} already exists")
        category = Category(name, num_buckets, retention_seconds)
        self._categories[name] = category
        return category

    def ensure_category(self, name: str,
                        num_buckets: int | None = None) -> Category:
        """Create the category if missing, else return the existing one.

        When the category already exists and the caller asked for a
        specific ``num_buckets``, a mismatch raises
        :class:`~repro.errors.ConfigError`: silently handing back a
        category with a different bucket count would scatter the
        caller's shard keys onto buckets it never reads.
        """
        existing = self._categories.get(name)
        if existing is not None:
            if num_buckets is not None and existing.num_buckets != num_buckets:
                raise ConfigError(
                    f"category {name!r} exists with "
                    f"{existing.num_buckets} buckets, not {num_buckets}"
                )
            return existing
        return self.create_category(
            name, num_buckets if num_buckets is not None else 1
        )

    def category(self, name: str) -> Category:
        if name not in self._categories:
            raise UnknownCategory(f"category {name!r} does not exist")
        return self._categories[name]

    def has_category(self, name: str) -> bool:
        return name in self._categories

    def categories(self) -> list[str]:
        return sorted(self._categories)

    # -- backpressure (credit-based flow control) ----------------------------

    def enable_backpressure(self, category_name: str,
                            max_outstanding: int) -> CreditGate:
        """Gate writes to ``category_name`` behind per-bucket credits.

        Each bucket may hold at most ``max_outstanding`` messages that no
        consumer has read yet; further writes raise
        :class:`~repro.errors.Backpressure` until reads grant credits
        back. Enabling twice reconfigures the limit but keeps the
        outstanding accounting.
        """
        self.category(category_name)  # validate eagerly
        gate = self._gates.get(category_name)
        if gate is not None:
            if max_outstanding < 1:
                raise ConfigError("max_outstanding must be >= 1")
            gate.max_outstanding = max_outstanding
            return gate
        gate = CreditGate(
            category_name, max_outstanding,
            granted=self.metrics.counter("scribe.credits.granted"),
            blocked=self.metrics.counter("scribe.credits.blocked"),
            reconciled=self.metrics.counter("scribe.credits.reconciled"),
        )
        self._gates[category_name] = gate
        return gate

    def gate_for(self, category_name: str) -> CreditGate | None:
        """The category's credit gate, or None when ungated."""
        return self._gates.get(category_name) if self._gates else None

    def reconcile_credits(self, category_name: str, bucket: int,
                          consumer_position: int) -> int:
        """Reset a gated bucket's outstanding count from its consumer.

        ``consumer_position`` is the surviving consumer's read position
        after a discontinuity (bucket handoff, retention skip): the true
        unread tail is everything written past it, including messages
        not yet visible. No-op for ungated categories; returns the
        credit adjustment applied (see :meth:`CreditGate.reconcile`).
        """
        gate = self.gate_for(category_name)
        if gate is None:
            return 0
        end = self.category(category_name).bucket(bucket).end_offset
        return gate.reconcile(bucket, max(0, end - consumer_position))

    # -- writes ---------------------------------------------------------------

    def _counters_for(self, category_name: str) -> tuple[Counter, Counter]:
        handles = self._write_counters.get(category_name)
        if handles is None:
            handles = (
                self.metrics.counter(f"scribe.{category_name}.messages"),
                self.metrics.counter(f"scribe.{category_name}.bytes"),
            )
            self._write_counters[category_name] = handles
        return handles

    def write(self, category_name: str, payload: bytes,
              key: str | None = None, bucket: int | None = None) -> int:
        """Append raw bytes; return the assigned offset.

        The bucket is chosen by, in priority order: the explicit ``bucket``
        argument, hashing ``key``, or bucket 0.
        """
        return self.write_to(self.category(category_name), payload,
                             key=key, bucket=bucket)

    def write_to(self, category: Category, payload: bytes,
                 key: str | None = None, bucket: int | None = None) -> int:
        """Append via a pre-resolved :class:`Category` handle.

        The fast path for writer clients that already hold the category
        (see :class:`~repro.scribe.writer.ScribeWriter`): no name lookup.
        """
        if bucket is None:
            if key is not None:
                bucket = default_bucketer(key, category.num_buckets)
            else:
                bucket = 0
        if self._gates:
            gate = self._gates.get(category.name)
            if gate is not None and not gate.try_acquire(bucket):
                raise Backpressure(category.name, bucket,
                                   gate.outstanding(bucket),
                                   gate.max_outstanding)
        now = self.clock.now()
        offset = category.bucket(bucket).append(
            payload, write_time=now, visible_at=now + self.delivery_delay
        )
        messages, nbytes = self._counters_for(category.name)
        messages.increment()
        nbytes.increment(len(payload))
        return offset

    def write_record(self, category_name: str, record: Mapping[str, Any],
                     key: str | None = None, bucket: int | None = None) -> int:
        """Serialize a record (see :mod:`repro.serde`) and append it."""
        return self.write(category_name, serde.encode(record), key, bucket)

    # -- reads ------------------------------------------------------------------

    def read(self, category_name: str, bucket: int, offset: int,
             max_messages: int = 100,
             max_bytes: int | None = None) -> list[Message]:
        """Read visible messages from one bucket starting at ``offset``."""
        return self.read_from(self.category(category_name).bucket(bucket),
                              offset, max_messages, max_bytes)

    def read_from(self, bucket: Bucket, offset: int,
                  max_messages: int = 100,
                  max_bytes: int | None = None) -> list[Message]:
        """Read via a pre-resolved :class:`Bucket` handle.

        The fast path for reader clients (see
        :class:`~repro.scribe.reader.ScribeReader`): per-batch work is one
        visibility-bounded slice of pre-built messages, with no category
        or bucket dict lookups and no per-message wrapping.
        """
        return bucket.read(
            offset, max_messages, now=self.clock.now(), max_bytes=max_bytes
        )

    def end_offset(self, category_name: str, bucket: int) -> int:
        return self.category(category_name).bucket(bucket).end_offset

    def visible_end_offset(self, category_name: str, bucket: int) -> int:
        return self.category(category_name).bucket(bucket).visible_end_offset(
            self.clock.now()
        )

    def first_retained_offset(self, category_name: str, bucket: int) -> int:
        return self.category(category_name).bucket(bucket).first_retained_offset

    # -- maintenance ---------------------------------------------------------

    def run_retention(self) -> int:
        """Trim every category to its retention window; return drops."""
        return sum(
            category.trim(self.clock.now())
            for category in self._categories.values()
        )

    # -- durability ("Scribe provides data durability by storing it in
    # HDFS", Section 2.1) -------------------------------------------------------

    def snapshot_to(self, hdfs, name: str = "scribe",
                    retry: RetryPolicy | None = None) -> int | None:
        """Persist every category's retained messages to the blob store.

        Returns the number of messages persisted. With no ``retry``
        policy, an HDFS outage raises
        :class:`~repro.errors.StoreUnavailable` and the caller retries
        on the next cycle. With a policy, the put is retried under it;
        exhausting the budget skips the snapshot, counts it in
        ``scribe.snapshot.skipped``, and returns None — the degraded
        mode matching the backup engine's.
        """
        blob: dict[str, Any] = {"categories": {}}
        count = 0
        for category_name, category in self._categories.items():
            buckets = []
            for bucket in category.buckets:
                messages = bucket.entries()
                buckets.append({
                    "base": bucket.first_retained_offset,
                    "end": bucket.end_offset,
                    "messages": messages,
                })
                count += len(messages)
            blob["categories"][category_name] = {
                "retention": category.retention_seconds,
                "buckets": buckets,
            }
        if retry is None:
            hdfs.put(f"{name}/state", blob)
            return count
        retrier = Retrier(retry, clock=self.clock, metrics=self.metrics,
                          scope="scribe.snapshot")
        try:
            retrier.call(hdfs.put, f"{name}/state", blob)
        except StoreUnavailable:
            self.metrics.counter("scribe.snapshot.skipped").increment()
            return None
        return count

    @classmethod
    def restore_from(cls, hdfs, name: str = "scribe",
                     clock: Clock | None = None,
                     delivery_delay: float = 0.0) -> "ScribeStore":
        """Rebuild a store (offsets included) from a snapshot."""
        try:
            blob = hdfs.get(f"{name}/state")
        except KeyError:
            raise BackupNotFound(f"no scribe snapshot named {name!r}") from None
        store = cls(clock=clock, delivery_delay=delivery_delay)
        for category_name, data in blob["categories"].items():
            category = store.create_category(
                category_name, num_buckets=len(data["buckets"]),
                retention_seconds=data["retention"],
            )
            for index, bucket_data in enumerate(data["buckets"]):
                bucket = category.bucket(index)
                # Re-establish the offset numbering, then the messages.
                bucket._base_offset = bucket_data["base"]
                for offset, write_time, visible_at, payload in \
                        bucket_data["messages"]:
                    bucket.append(payload, write_time, visible_at)
                assert bucket.end_offset == bucket_data["end"]
        return store
