"""Reader clients: per-bucket tailer and whole-category fan-in.

Readers are completely independent of writers and of each other — the
decoupling that the paper's data-transfer decision buys (Section 4.2.2).
A reader owns only a position; seeking it backwards replays history
(debugging, recovery), and two readers at different positions never
interfere.
"""

from __future__ import annotations

from repro.errors import OffsetOutOfRange
from repro.scribe.message import Message
from repro.scribe.store import ScribeStore


class ScribeReader:
    """A tailer over one (category, bucket) pair."""

    def __init__(self, store: ScribeStore, category: str, bucket: int,
                 start_offset: int | None = None) -> None:
        self.store = store
        self.category = category
        self.bucket = bucket
        if start_offset is None:
            start_offset = store.first_retained_offset(category, bucket)
        self.position = start_offset

    # -- reading ---------------------------------------------------------------

    def read_batch(self, max_messages: int = 100,
                   max_bytes: int | None = None) -> list[Message]:
        """Read the next batch and advance the position past it.

        If the position has fallen below the retained window (the reader
        lagged past retention), it skips forward to the first retained
        offset — matching a real tailer, which loses that data.
        """
        try:
            batch = self.store.read(self.category, self.bucket, self.position,
                                    max_messages, max_bytes)
        except OffsetOutOfRange:
            first = self.store.first_retained_offset(self.category, self.bucket)
            if self.position >= first:
                raise  # position beyond the end: a real bug, don't mask it
            self.position = first
            batch = self.store.read(self.category, self.bucket, self.position,
                                    max_messages, max_bytes)
        if batch:
            self.position = batch[-1].offset + 1
        return batch

    def peek(self, max_messages: int = 100) -> list[Message]:
        """Read without advancing the position."""
        return self.store.read(self.category, self.bucket, self.position,
                               max_messages)

    # -- positioning ---------------------------------------------------------

    def seek(self, offset: int) -> None:
        self.position = offset

    def seek_to_end(self) -> None:
        self.position = self.store.end_offset(self.category, self.bucket)

    def seek_to_start(self) -> None:
        self.position = self.store.first_retained_offset(self.category, self.bucket)

    def seek_to_time(self, write_time: float) -> None:
        """Replay from a given (recent) time period (Section 6.2)."""
        bucket = self.store.category(self.category).bucket(self.bucket)
        self.position = bucket.first_offset_at_or_after(write_time)

    # -- lag (Section 6.4: "processing lag" alerts) -----------------------------

    def lag_messages(self) -> int:
        """How many visible messages are waiting to be read."""
        end = self.store.visible_end_offset(self.category, self.bucket)
        return max(0, end - self.position)

    def caught_up(self) -> bool:
        return self.lag_messages() == 0


class CategoryReader:
    """Fan-in reader across every bucket of a category.

    Convenient for single-process consumers (data-store ingestion tiers,
    tests). Round-robins across buckets so no bucket starves.
    """

    def __init__(self, store: ScribeStore, category: str,
                 from_start: bool = True) -> None:
        self.store = store
        self.category = category
        num_buckets = store.category(category).num_buckets
        self.readers = [
            ScribeReader(store, category, bucket,
                         start_offset=None if from_start else
                         store.end_offset(category, bucket))
            for bucket in range(num_buckets)
        ]
        self._next_bucket = 0

    def _refresh_buckets(self) -> None:
        # The category may have been resized since we attached.
        num_buckets = self.store.category(self.category).num_buckets
        for bucket in range(len(self.readers), num_buckets):
            self.readers.append(ScribeReader(self.store, self.category, bucket))

    def read_batch(self, max_messages: int = 100) -> list[Message]:
        """Read up to ``max_messages`` total, round-robin over buckets."""
        self._refresh_buckets()
        result: list[Message] = []
        attempts = 0
        while len(result) < max_messages and attempts < len(self.readers):
            reader = self.readers[self._next_bucket]
            self._next_bucket = (self._next_bucket + 1) % len(self.readers)
            batch = reader.read_batch(max_messages - len(result))
            if batch:
                attempts = 0
                result.extend(batch)
            else:
                attempts += 1
        return result

    def read_all(self, batch_size: int = 1000) -> list[Message]:
        """Drain everything currently visible."""
        result: list[Message] = []
        while True:
            batch = self.read_batch(batch_size)
            if not batch:
                return result
            result.extend(batch)

    def lag_messages(self) -> int:
        self._refresh_buckets()
        return sum(reader.lag_messages() for reader in self.readers)
