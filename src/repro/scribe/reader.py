"""Reader clients: per-bucket tailer and whole-category fan-in.

Readers are completely independent of writers and of each other — the
decoupling that the paper's data-transfer decision buys (Section 4.2.2).
A reader owns only a position; seeking it backwards replays history
(debugging, recovery), and two readers at different positions never
interfere.

Each reader resolves its :class:`~repro.scribe.bucket.Bucket` handle
once at attach time and reads through it directly, rather than paying a
category-registry and bucket-list lookup per batch. Bucket handles are
stable: categories only grow, and grown buckets keep their objects.
"""

from __future__ import annotations

from repro.errors import OffsetOutOfRange
from repro.scribe.message import Message
from repro.scribe.store import ScribeStore


class ScribeReader:
    """A tailer over one (category, bucket) pair."""

    def __init__(self, store: ScribeStore, category: str, bucket: int,
                 start_offset: int | None = None) -> None:
        self.store = store
        self.category = category
        self.bucket = bucket
        # Resolved once; validates the category/bucket pair eagerly.
        self._bucket = store.category(category).bucket(bucket)
        if start_offset is None:
            start_offset = self._bucket.first_retained_offset
        self.position = start_offset

    # -- reading ---------------------------------------------------------------

    def read_batch(self, max_messages: int = 100,
                   max_bytes: int | None = None) -> list[Message]:
        """Read the next batch and advance the position past it.

        If the position has fallen below the retained window (the reader
        lagged past retention), it skips forward to the first retained
        offset — matching a real tailer, which loses that data.
        """
        try:
            batch = self.store.read_from(self._bucket, self.position,
                                         max_messages, max_bytes)
        except OffsetOutOfRange:
            first = self._bucket.first_retained_offset
            if self.position >= first:
                raise  # position beyond the end: a real bug, don't mask it
            self.position = first
            # The skipped messages are gone — retention trimmed them
            # before this consumer saw them — so no future read will
            # ever grant their credits. Reconcile the gate to the true
            # unread tail, or a producer under backpressure would block
            # forever on a bucket that lost its backlog (see
            # repro.scribe.flow).
            self.store.reconcile_credits(self.category, self.bucket, first)
            batch = self.store.read_from(self._bucket, self.position,
                                         max_messages, max_bytes)
        if batch:
            self.position = batch[-1].offset + 1
            # Consuming messages grants their credits back to producers
            # (see repro.scribe.flow). peek() deliberately does not: it
            # leaves the position — and therefore the consumption
            # accounting — untouched.
            gate = self.store.gate_for(self.category)
            if gate is not None:
                gate.grant(self.bucket, len(batch))
        return batch

    def peek(self, max_messages: int = 100,
             max_bytes: int | None = None) -> list[Message]:
        """Read without advancing the position."""
        return self.store.read_from(self._bucket, self.position,
                                    max_messages, max_bytes)

    # -- positioning ---------------------------------------------------------

    def seek(self, offset: int) -> None:
        self.position = offset

    def seek_to_end(self) -> None:
        self.position = self._bucket.end_offset

    def seek_to_start(self) -> None:
        self.position = self._bucket.first_retained_offset

    def seek_to_time(self, write_time: float) -> None:
        """Replay from a given (recent) time period (Section 6.2)."""
        self.position = self._bucket.first_offset_at_or_after(write_time)

    # -- lag (Section 6.4: "processing lag" alerts) -----------------------------

    def lag_messages(self) -> int:
        """How many visible messages are waiting to be read."""
        end = self._bucket.visible_end_offset(self.store.clock.now())
        return max(0, end - self.position)

    def caught_up(self) -> bool:
        return self.lag_messages() == 0


class CategoryReader:
    """Fan-in reader across every bucket of a category.

    Convenient for single-process consumers (data-store ingestion tiers,
    tests). Round-robins across buckets so no bucket starves.
    """

    def __init__(self, store: ScribeStore, category: str,
                 from_start: bool = True) -> None:
        self.store = store
        self.category = category
        self._from_start = from_start
        # Category handles are stable (categories are never replaced,
        # only grown), so resolve once and skip the registry lookup the
        # resize check would otherwise pay on every read.
        self._category = store.category(category)
        num_buckets = self._category.num_buckets
        self.readers = [
            ScribeReader(store, category, bucket,
                         start_offset=None if from_start else
                         store.end_offset(category, bucket))
            for bucket in range(num_buckets)
        ]
        self._next_bucket = 0

    def _refresh_buckets(self) -> None:
        # The category may have been resized since we attached. A reader
        # attached with from_start=False is tail-only, so buckets it
        # discovers late start at their current end — otherwise a resize
        # would make it replay every message those buckets accumulated
        # before the next read noticed them.
        num_buckets = self._category.num_buckets
        for bucket in range(len(self.readers), num_buckets):
            self.readers.append(ScribeReader(
                self.store, self.category, bucket,
                start_offset=None if self._from_start else
                self.store.end_offset(self.category, bucket),
            ))

    def read_batch(self, max_messages: int = 100,
                   max_bytes: int | None = None) -> list[Message]:
        """Read up to ``max_messages``/``max_bytes`` total, round-robin
        over buckets (the byte budget spans the whole fan-in batch)."""
        self._refresh_buckets()
        result: list[Message] = []
        consumed = 0
        attempts = 0
        while len(result) < max_messages and attempts < len(self.readers):
            reader = self.readers[self._next_bucket]
            self._next_bucket = (self._next_bucket + 1) % len(self.readers)
            remaining = (None if max_bytes is None
                         else max(0, max_bytes - consumed))
            if remaining is not None and consumed and remaining <= 0:
                break
            batch = reader.read_batch(max_messages - len(result), remaining)
            if batch:
                attempts = 0
                result.extend(batch)
                if max_bytes is not None:
                    consumed += sum(message.size for message in batch)
            else:
                attempts += 1
        return result

    def read_all(self, batch_size: int = 1000) -> list[Message]:
        """Drain everything currently visible."""
        result: list[Message] = []
        while True:
            batch = self.read_batch(batch_size)
            if not batch:
                return result
            result.extend(batch)

    def lag_messages(self) -> int:
        self._refresh_buckets()
        return sum(reader.lag_messages() for reader in self.readers)
