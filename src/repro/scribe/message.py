"""The message type returned to Scribe readers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import serde


@dataclass(frozen=True)
class Message:
    """A message as seen by a reader.

    ``offset`` is the position within the bucket (dense, starting at 0 for
    the life of the bucket, even after older messages are trimmed).
    ``write_time`` is the bus-side arrival time — distinct from any event
    time carried *inside* the payload, which is the processing systems'
    concern (Section 2.4).
    """

    category: str
    bucket: int
    offset: int
    write_time: float
    payload: bytes

    def decode(self) -> dict[str, Any]:
        """Deserialize the payload as a record (see :mod:`repro.serde`)."""
        return serde.decode(self.payload)

    @property
    def size(self) -> int:
        """Payload size in bytes (used for byte-based checkpoints)."""
        return len(self.payload)
