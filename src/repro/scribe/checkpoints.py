"""Durable offset/state checkpoints for bus consumers.

Swift checkpoints plain offsets here; Stylus checkpoints offsets together
with serialized state and (for at-most-once output) pending output. The
store survives process crashes — it stands in for the reliable system
(HBase / local RocksDB) real consumers write checkpoints to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Checkpoint:
    """One saved consumer position, with optional state and output blobs."""

    offset: int
    state: Any = None
    pending_output: tuple = ()
    saved_at: float = 0.0


@dataclass
class CheckpointStore:
    """Maps (consumer, category, bucket) -> latest :class:`Checkpoint`.

    Writes replace the previous checkpoint atomically (a dict assignment
    is atomic at our level of abstraction — the simulated failure points
    are between calls, never inside one).
    """

    _checkpoints: dict[tuple[str, str, int], Checkpoint] = field(
        default_factory=dict
    )

    def save(self, consumer: str, category: str, bucket: int,
             checkpoint: Checkpoint) -> None:
        self._checkpoints[(consumer, category, bucket)] = checkpoint

    def load(self, consumer: str, category: str,
             bucket: int) -> Checkpoint | None:
        return self._checkpoints.get((consumer, category, bucket))

    def delete(self, consumer: str, category: str, bucket: int) -> None:
        self._checkpoints.pop((consumer, category, bucket), None)

    def consumers(self) -> list[str]:
        return sorted({key[0] for key in self._checkpoints})
