"""Credit-based flow control for Scribe categories.

The paper's bus decouples producers from consumers (Section 4.2.2), but
decoupling alone lets a producer that outruns its consumers grow a
bucket without bound until retention trims data the consumer never saw.
Credit-based backpressure closes the loop the way hardware flow control
does: each bucket carries a budget of *credits* (messages a producer may
have in flight beyond what consumers have read); a write spends one, a
consumer read grants them back. When a bucket's outstanding count hits
the limit the store refuses the write with
:class:`~repro.errors.Backpressure` — the producer blocks (or sheds)
instead of the bucket growing unbounded.

Accounting is deliberately conservative under replay: a reader that
seeks backwards after a crash re-reads — and therefore re-grants —
messages it already granted, so the outstanding count clamps at zero
rather than going negative. Backpressure may under-throttle briefly
after a replay; it never deadlocks a producer on credits that no future
read would grant.

The conservative clamp handles *over*-granting; the opposite defect —
credits that no surviving reader will ever grant — needs
:meth:`CreditGate.reconcile`. Retention can trim messages no consumer
read (their credits were acquired at write time and nothing will read
them), and a bucket handed between shard owners can resume past trimmed
history. Without reconciliation the outstanding count wedges at the
limit and the producer blocks forever on a bucket that is actually
empty. Owners of the consumer position (the topology's rebalance path,
the reader's retention skip) therefore re-derive the true unread count
and reset the gate to it.

Counters (registered by the store when backpressure is enabled):

- ``scribe.credits.granted`` — credits returned by consumer reads;
- ``scribe.credits.blocked`` — writes refused for lack of credits;
- ``scribe.credits.reconciled`` — credits freed (or restored) by
  reconciliation after a handoff or a retention skip.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.runtime.metrics import Counter


class CreditGate:
    """Per-bucket outstanding-message accounting for one category."""

    def __init__(self, category: str, max_outstanding: int,
                 granted: Counter, blocked: Counter,
                 reconciled: Counter | None = None) -> None:
        if max_outstanding < 1:
            raise ConfigError("max_outstanding must be >= 1")
        self.category = category
        self.max_outstanding = max_outstanding
        self._granted = granted
        self._blocked = blocked
        self._reconciled = reconciled
        self._outstanding: dict[int, int] = {}

    def outstanding(self, bucket: int) -> int:
        return self._outstanding.get(bucket, 0)

    def available(self, bucket: int) -> int:
        return max(0, self.max_outstanding - self.outstanding(bucket))

    def try_acquire(self, bucket: int) -> bool:
        """Spend one credit on ``bucket``; False (and counted) if none left."""
        held = self._outstanding.get(bucket, 0)
        if held >= self.max_outstanding:
            self._blocked.increment()
            return False
        self._outstanding[bucket] = held + 1
        return True

    def grant(self, bucket: int, count: int) -> None:
        """Return ``count`` credits after a consumer read ``count`` messages.

        Clamped at zero: replayed reads after a consumer crash re-grant
        messages that were already granted once (see module docstring).
        """
        if count <= 0:
            return
        self._granted.increment(count)
        held = self._outstanding.get(bucket, 0)
        if held:
            self._outstanding[bucket] = max(0, held - count)

    def reconcile(self, bucket: int, unread: int) -> int:
        """Reset ``bucket``'s outstanding count to the true ``unread`` tail.

        Called after a consumer-position discontinuity — a bucket
        adopted by a new shard owner, or a reader that skipped forward
        past retention-trimmed history. ``unread`` is the number of
        retained messages the surviving consumer has yet to read: every
        one of them will be granted by a future read, and nothing else
        ever will be. Returns the adjustment applied (positive frees
        credits); the absolute adjustment is counted in
        ``scribe.credits.reconciled``.
        """
        if unread < 0:
            raise ConfigError("unread count must be >= 0")
        held = self._outstanding.get(bucket, 0)
        if held == unread:
            return 0
        self._outstanding[bucket] = unread
        if self._reconciled is not None:
            self._reconciled.increment(abs(held - unread))
        return held - unread
