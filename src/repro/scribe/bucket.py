"""A Scribe bucket: the append-only log that backs one partition.

A bucket is "the basic processing unit for stream processing systems"
(Section 2.1). It stores messages densely by offset, supports reading any
retained range, and trims data older than the retention window. Offsets
are never reused: after trimming, the first retained offset moves forward
but the numbering is stable, so checkpointed offsets stay meaningful.

Messages are materialized as reader-facing :class:`Message` objects once,
at append time, so a read is a bounds check plus one list slice — no
per-message wrapping on the (much hotter) read path. Visibility stamps
live in a parallel array: they are the bus's delivery bookkeeping, not
part of what a reader sees.
"""

from __future__ import annotations

from repro.errors import OffsetOutOfRange
from repro.scribe.message import Message


class Bucket:
    """Append-only message log with retention trimming."""

    def __init__(self, category: str, index: int) -> None:
        self.category = category
        self.index = index
        self._messages: list[Message] = []
        self._visible_at: list[float] = []  # parallel to _messages
        self._base_offset = 0  # offset of _messages[0]
        self._bytes_appended = 0

    # -- writes -------------------------------------------------------------

    def append(self, payload: bytes, write_time: float,
               visible_at: float) -> int:
        """Store a message; return its offset."""
        offset = self._base_offset + len(self._messages)
        self._messages.append(
            Message(self.category, self.index, offset, write_time, payload)
        )
        self._visible_at.append(visible_at)
        self._bytes_appended += len(payload)
        return offset

    # -- reads --------------------------------------------------------------

    @property
    def end_offset(self) -> int:
        """One past the last stored offset (the next offset to be written)."""
        return self._base_offset + len(self._messages)

    @property
    def first_retained_offset(self) -> int:
        return self._base_offset

    @property
    def retained_count(self) -> int:
        return len(self._messages)

    @property
    def bytes_appended(self) -> int:
        """Total payload bytes ever appended (not reduced by trimming)."""
        return self._bytes_appended

    def read(self, offset: int, max_messages: int, now: float,
             max_bytes: int | None = None) -> list[Message]:
        """Read up to ``max_messages`` starting at ``offset``.

        Only messages whose ``visible_at`` is at or before ``now`` are
        returned (modeling Scribe's delivery latency). Reading exactly at
        ``end_offset`` returns an empty list — that is a caught-up tailer,
        not an error. Reading below the retained window raises
        :class:`OffsetOutOfRange` so the caller can decide whether to skip
        forward (data loss) or fail.
        """
        if offset < self._base_offset or offset > self.end_offset:
            raise OffsetOutOfRange(
                self.category, self.index, offset,
                self._base_offset, self.end_offset,
            )
        if max_messages <= 0:
            return []
        position = offset - self._base_offset
        visible = self._visible_at
        if max_bytes is None:
            # Fast path: clamp at the visibility horizon (visible_at is
            # non-decreasing: the bus stamps it from its monotone clock
            # plus a constant delay), then one slice.
            stop = min(position + max_messages, len(self._messages))
            if stop > position and visible[stop - 1] > now:
                lo, hi = position, stop
                while lo < hi:
                    mid = (lo + hi) // 2
                    if visible[mid] <= now:
                        lo = mid + 1
                    else:
                        hi = mid
                stop = lo
            return self._messages[position:stop]
        result: list[Message] = []
        budget = max_bytes
        while position < len(self._messages) and len(result) < max_messages:
            if visible[position] > now:
                break  # later messages are even less visible
            message = self._messages[position]
            if result and message.size > budget:
                break
            result.append(message)
            budget -= message.size
            position += 1
        return result

    def entries(self) -> list[tuple[int, float, float, bytes]]:
        """Every retained ``(offset, write_time, visible_at, payload)``.

        The durability hook for snapshots, which must persist the
        visibility stamps that readers never see.
        """
        return [(message.offset, message.write_time, visible, message.payload)
                for message, visible in zip(self._messages, self._visible_at)]

    def first_offset_at_or_after(self, write_time: float) -> int:
        """The first retained offset written at or after ``write_time``.

        Write times are non-decreasing within a bucket (the bus stamps
        them from its clock), so this is a binary search — the primitive
        behind "we can replay a stream from a given (recent) time
        period" (Section 6.2). Returns ``end_offset`` if everything
        retained is older.
        """
        lo, hi = 0, len(self._messages)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._messages[mid].write_time < write_time:
                lo = mid + 1
            else:
                hi = mid
        return self._base_offset + lo

    def visible_end_offset(self, now: float) -> int:
        """One past the last offset visible to readers at time ``now``."""
        # Visibility is monotone in offset, so scan back from the end.
        position = len(self._visible_at)
        while position > 0 and self._visible_at[position - 1] > now:
            position -= 1
        return self._base_offset + position

    # -- retention ------------------------------------------------------------

    def trim_older_than(self, cutoff_time: float) -> int:
        """Drop messages written before ``cutoff_time``; return count dropped."""
        keep = 0
        while (keep < len(self._messages)
               and self._messages[keep].write_time < cutoff_time):
            keep += 1
        if keep:
            del self._messages[:keep]
            del self._visible_at[:keep]
            self._base_offset += keep
        return keep

    def trim_to_offset(self, offset: int) -> int:
        """Drop messages below ``offset``; return count dropped."""
        if offset <= self._base_offset:
            return 0
        drop = min(offset, self.end_offset) - self._base_offset
        del self._messages[:drop]
        del self._visible_at[:drop]
        self._base_offset += drop
        return drop
