"""A Scribe category: a named stream partitioned into buckets."""

from __future__ import annotations

from repro.errors import ConfigError, ScribeError
from repro.scribe.bucket import Bucket


class Category:
    """A distinct stream of data with a fixed-at-a-time bucket count.

    Parallelism is controlled by the bucket count; the paper notes that
    scaling is "changing the number of buckets per Scribe category in a
    configuration file" (Section 4.2.2). :meth:`resize` models exactly
    that: new buckets start empty, existing buckets keep their data, and
    writers immediately spread keys across the new count.
    """

    def __init__(self, name: str, num_buckets: int = 1,
                 retention_seconds: float = 3 * 24 * 3600.0) -> None:
        if not name:
            raise ConfigError("category name must be non-empty")
        if num_buckets < 1:
            raise ConfigError(f"category {name!r} needs >= 1 bucket")
        if retention_seconds <= 0:
            raise ConfigError(f"category {name!r} needs positive retention")
        self.name = name
        self.retention_seconds = retention_seconds
        self.buckets: list[Bucket] = [
            Bucket(name, index) for index in range(num_buckets)
        ]

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    def bucket(self, index: int) -> Bucket:
        if not 0 <= index < len(self.buckets):
            raise ScribeError(
                f"category {self.name!r} has {len(self.buckets)} buckets; "
                f"bucket {index} does not exist"
            )
        return self.buckets[index]

    def resize(self, num_buckets: int) -> None:
        """Change the bucket count (grow only, as a config push would)."""
        if num_buckets < len(self.buckets):
            raise ConfigError(
                f"cannot shrink category {self.name!r} from "
                f"{len(self.buckets)} to {num_buckets} buckets"
            )
        for index in range(len(self.buckets), num_buckets):
            self.buckets.append(Bucket(self.name, index))

    def total_messages_retained(self) -> int:
        return sum(bucket.retained_count for bucket in self.buckets)

    def total_bytes_appended(self) -> int:
        return sum(bucket.bytes_appended for bucket in self.buckets)

    def trim(self, now: float) -> int:
        """Apply retention; return the number of messages dropped."""
        cutoff = now - self.retention_seconds
        return sum(bucket.trim_older_than(cutoff) for bucket in self.buckets)
