"""Writer client bound to one category."""

from __future__ import annotations

from typing import Any, Mapping

from repro import serde
from repro.scribe.store import ScribeStore, default_bucketer


class ScribeWriter:
    """Appends records to a category, sharding by an optional key.

    Processors re-shard their output by writing with a different shard key
    than the one their input was sharded by (e.g. the Filterer in Figure 3
    shards its output by dimension id).

    The category handle is resolved once at construction (handles are
    stable across resizes), so the per-write cost is encode + append —
    no registry lookups on the hot path.
    """

    def __init__(self, store: ScribeStore, category: str) -> None:
        self.store = store
        self.category = category
        # Fail fast on typos rather than on the first write; keep the
        # resolved handle for every subsequent append.
        self._category = store.category(category)

    def write(self, record: Mapping[str, Any], key: str | None = None) -> int:
        """Serialize and append ``record``; return the assigned offset."""
        return self.store.write_to(self._category, serde.encode(record),
                                   key=key)

    def write_batch(self, records: list[Mapping[str, Any]],
                    key: str | None = None) -> list[int]:
        """Serialize and append many records; return their offsets.

        One serde call and one handle resolution for the whole batch —
        the write-side twin of :func:`repro.serde.decode_batch`.
        """
        write_to = self.store.write_to
        category = self._category
        return [write_to(category, payload, key=key)
                for payload in serde.encode_batch(records)]

    def write_bytes(self, payload: bytes, key: str | None = None) -> int:
        return self.store.write_to(self._category, payload, key=key)

    def write_to_bucket(self, record: Mapping[str, Any], bucket: int) -> int:
        return self.store.write_to(self._category, serde.encode(record),
                                   bucket=bucket)

    def bucket_for_key(self, key: str) -> int:
        """Which bucket a key currently lands in (after any resize)."""
        return default_bucketer(key, self._category.num_buckets)

    def encoded_size(self, record: Mapping[str, Any]) -> int:
        return serde.encoded_size(record)
