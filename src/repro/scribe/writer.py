"""Writer client bound to one category."""

from __future__ import annotations

from typing import Any, Mapping

from repro import serde
from repro.core.sharding import shards_for_keys
from repro.errors import Backpressure
from repro.scribe.store import ScribeStore, default_bucketer


class ScribeWriter:
    """Appends records to a category, sharding by an optional key.

    Processors re-shard their output by writing with a different shard key
    than the one their input was sharded by (e.g. the Filterer in Figure 3
    shards its output by dimension id).

    The category handle is resolved once at construction (handles are
    stable across resizes), so the per-write cost is encode + append —
    no registry lookups on the hot path.
    """

    def __init__(self, store: ScribeStore, category: str) -> None:
        self.store = store
        self.category = category
        # Fail fast on typos rather than on the first write; keep the
        # resolved handle for every subsequent append.
        self._category = store.category(category)

    def write(self, record: Mapping[str, Any], key: str | None = None) -> int:
        """Serialize and append ``record``; return the assigned offset."""
        return self.store.write_to(self._category, serde.encode(record),
                                   key=key)

    def try_write(self, record: Mapping[str, Any],
                  key: str | None = None) -> int | None:
        """Like :meth:`write`, but returns None when backpressured.

        The polling form of producer blocking: a scheduled producer that
        gets None keeps the record and retries next tick, so the
        simulated process blocks without exception control flow in its
        steady-state loop.
        """
        try:
            return self.write(record, key=key)
        except Backpressure:
            return None

    def write_batch(self, records: list[Mapping[str, Any]],
                    key: str | None = None,
                    keys: list[str] | None = None) -> list[int]:
        """Serialize and append many records; return their offsets.

        One serde call and one handle resolution for the whole batch —
        the write-side twin of :func:`repro.serde.decode_batch`. With
        ``keys`` (one per record), the per-record buckets come from one
        vectorized :func:`~repro.core.sharding.shards_for_keys` pass
        instead of a hash-and-validate call per record.
        """
        write_to = self.store.write_to
        category = self._category
        payloads = serde.encode_batch(records)
        if keys is not None:
            if len(keys) != len(records):
                raise ValueError(
                    f"{len(records)} records but {len(keys)} keys"
                )
            buckets = shards_for_keys(keys, category.num_buckets)
            return [write_to(category, payload, bucket=bucket)
                    for payload, bucket in zip(payloads, buckets)]
        return [write_to(category, payload, key=key) for payload in payloads]

    def write_bytes(self, payload: bytes, key: str | None = None) -> int:
        return self.store.write_to(self._category, payload, key=key)

    def write_to_bucket(self, record: Mapping[str, Any], bucket: int) -> int:
        return self.store.write_to(self._category, serde.encode(record),
                                   bucket=bucket)

    def bucket_for_key(self, key: str) -> int:
        """Which bucket a key currently lands in (after any resize)."""
        return default_bucketer(key, self._category.num_buckets)

    def encoded_size(self, record: Mapping[str, Any]) -> int:
        return serde.encoded_size(record)
