"""Laser: high-query-throughput, low-latency key-value serving.

"Laser can read from any Scribe category in realtime or from any Hive
table once a day. The key and value can each be any combination of
columns in the (serialized) input stream" (Section 2.5). A
:class:`LaserTable` is configured exactly like the paper's UI describes
(Section 6.3): an ordered set of key columns, an ordered set of value
columns, and a lifetime per key-value pair. Tables are backed by the
RocksDB-style LSM store, matching "built on top of RocksDB".

Its two paper use cases are both supported:

- make a Puma/Stylus output stream available to products (ingest from
  Scribe, serve point lookups);
- make a Hive query result available for lookup joins (bulk load from a
  Hive table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro import serde
from repro.errors import ConfigError, LaserError, StoreUnavailable
from repro.hive.warehouse import HiveTable
from repro.runtime.clock import Clock, WallClock
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.retry import Retrier, RetryPolicy
from repro.scribe.reader import CategoryReader
from repro.scribe.store import ScribeStore
from repro.storage.lsm import LsmStore

if TYPE_CHECKING:
    from repro.runtime.failures import Network

Row = dict[str, Any]


@dataclass(frozen=True)
class _Stamped:
    """A stored value plus its expiry time (lifetime support)."""

    value: Any
    expires_at: float


class LaserTable:
    """One Laser app: key columns, value columns, lifetime, source."""

    def __init__(self, name: str, key_columns: list[str],
                 value_columns: list[str],
                 lifetime_seconds: float = float("inf"),
                 clock: Clock | None = None,
                 metrics: MetricsRegistry | None = None,
                 batched: bool = True,
                 network: "Network | None" = None,
                 link: tuple[str, str] | None = None) -> None:
        if not key_columns:
            raise ConfigError("at least one key column is required")
        if not value_columns:
            raise ConfigError("at least one value column is required")
        if lifetime_seconds <= 0:
            raise ConfigError("lifetime must be positive")
        self.name = name
        self.key_columns = list(key_columns)
        self.value_columns = list(value_columns)
        self.lifetime_seconds = lifetime_seconds
        self.batched = batched
        self.clock = clock if clock is not None else WallClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._store = LsmStore(name=f"laser:{name}")
        self._readers: list[CategoryReader] = []
        self._writes_counter = self.metrics.counter(f"laser.{name}.writes")
        self._reads_counter = self.metrics.counter(f"laser.{name}.reads")
        self._unavailable_counter = self.metrics.counter(
            f"laser.{name}.unavailable_errors")
        self._latched_down = False
        self._slow_factor = 1.0
        self._outages: list[tuple[float, float]] = []
        self._network = network
        self._link = link

    # -- fault injection --------------------------------------------------------

    def add_outage(self, start: float, end: float) -> None:
        """Mark ``[start, end)`` as a serving outage window."""
        if end <= start:
            raise ConfigError("outage end must be after start")
        self._outages.append((start, end))

    def set_available(self, available: bool) -> None:
        """Latch the tier down (or heal it), independent of windows."""
        self._latched_down = not available

    def set_slow_factor(self, factor: float) -> None:
        if factor < 1.0:
            raise ConfigError("slow factor must be >= 1")
        self._slow_factor = factor

    @property
    def slow_factor(self) -> float:
        return self._slow_factor

    def available(self) -> bool:
        if self._latched_down:
            return False
        if (self._network is not None and self._link is not None
                and not self._network.connected(*self._link)):
            return False
        if self._outages:
            now = self.clock.now()
            if any(start <= now < end for start, end in self._outages):
                return False
        return True

    def _check_available(self, operation: str) -> None:
        if not self.available():
            self._unavailable_counter.increment()
            raise StoreUnavailable(
                f"laser table {self.name!r} unavailable during {operation}"
            )

    # -- ingestion --------------------------------------------------------------

    def _composite_key(self, row: Row) -> str:
        try:
            return "\x1f".join(str(row[c]) for c in self.key_columns)
        except KeyError as exc:
            raise LaserError(
                f"row missing key column {exc.args[0]!r} for table "
                f"{self.name!r}"
            ) from None

    def put_row(self, row: Row) -> None:
        """Store one row under its composite key."""
        value = {c: row.get(c) for c in self.value_columns}
        expires = self.clock.now() + self.lifetime_seconds
        self._store.put(self._composite_key(row), _Stamped(value, expires))
        self._writes_counter.increment()

    def put_rows(self, rows: list[Row]) -> None:
        """Store many rows in one WAL/memtable batch.

        The incremental-view path (``PumaApp.attach_laser_view``) pushes
        each checkpoint's flushed cells through here, so a view refresh
        costs one batched write per flush, not one put per cell.
        Duplicate keys collapse to the last write, same as sequential
        :meth:`put_row` calls.
        """
        if not rows:
            return
        expires = self.clock.now() + self.lifetime_seconds
        value_columns = self.value_columns
        composite = self._composite_key
        puts = {
            composite(row): _Stamped(
                {c: row.get(c) for c in value_columns}, expires)
            for row in rows
        }
        self._store.write_batch(puts=puts)
        self._writes_counter.increment(len(rows))

    def tail_scribe(self, scribe: ScribeStore, category: str) -> None:
        """Continuously ingest a category (realtime source)."""
        self._readers.append(CategoryReader(scribe, category))

    def pump(self, max_messages: int = 1000) -> int:
        """Advance the Scribe tails; returns rows ingested."""
        ingested = 0
        for reader in self._readers:
            batch = reader.read_batch(max_messages)
            if not batch:
                continue
            # One serde pass for the whole batch (deserialization is the
            # ingestion bottleneck — the paper's Figure 9 point).
            rows = serde.decode_batch([m.payload for m in batch])
            if not self.batched:
                for row in rows:
                    self.put_row(row)
                ingested += len(rows)
                continue
            # One WAL/memtable batch per Scribe batch: duplicate keys
            # collapse to the last write, same as sequential puts.
            expires = self.clock.now() + self.lifetime_seconds
            value_columns = self.value_columns
            composite = self._composite_key
            puts = {
                composite(row): _Stamped(
                    {c: row.get(c) for c in value_columns}, expires)
                for row in rows
            }
            self._store.write_batch(puts=puts)
            self._writes_counter.increment(len(rows))
            ingested += len(rows)
        return ingested

    def load_from_hive(self, table: HiveTable,
                       days: list[int] | None = None) -> int:
        """Bulk-load a Hive table (the once-a-day source); returns rows."""
        loaded = 0
        for row in table.scan(days):
            self.put_row(row)
            loaded += 1
        return loaded

    # -- serving -------------------------------------------------------------------

    def get(self, *key_values: Any) -> Row | None:
        """Point lookup by key column values, in declared order."""
        if len(key_values) != len(self.key_columns):
            raise LaserError(
                f"table {self.name!r} key has {len(self.key_columns)} "
                f"columns; got {len(key_values)} values"
            )
        self._check_available("get")
        composite = "\x1f".join(str(v) for v in key_values)
        stamped = self._store.get(composite)
        self._reads_counter.increment()
        if stamped is None or stamped.expires_at <= self.clock.now():
            return None
        return dict(stamped.value)

    def multi_get(self, keys: list[tuple]) -> dict[tuple, Row | None]:
        """Point lookups for many keys in one pass over the store.

        Goes through :meth:`LsmStore.multi_get`, which probes each
        SSTable run once for the whole (sorted) key set instead of once
        per key.
        """
        self._check_available("multi_get")
        composites = []
        for key_values in keys:
            if len(key_values) != len(self.key_columns):
                raise LaserError(
                    f"table {self.name!r} key has {len(self.key_columns)} "
                    f"columns; got {len(key_values)} values"
                )
            composites.append("\x1f".join(str(v) for v in key_values))
        stamped_map = self._store.multi_get(composites)
        self._reads_counter.increment(len(keys))
        now = self.clock.now()
        out: dict[tuple, Row | None] = {}
        for key_values, composite in zip(keys, composites):
            stamped = stamped_map.get(composite)
            if stamped is None or stamped.expires_at <= now:
                out[key_values] = None
            else:
                out[key_values] = dict(stamped.value)
        return out


class ReplicatedLaserTable:
    """One logical Laser app running in several data centers.

    The paper's Laser UI asks for "a set of data centers to run the
    service" (Section 6.3), and the bus design means "we can run
    multiple Scuba or Laser tiers that each read all of their input
    streams' data, so that we have redundancy for disaster recovery"
    (Section 4.2.2): each tier tails the category independently — no
    cross-tier replication protocol is needed because the bus *is* the
    replication. Reads hit the preferred (local) tier and fail over.
    """

    def __init__(self, name: str, tiers: dict[str, LaserTable],
                 metrics: MetricsRegistry | None = None,
                 retry: RetryPolicy | None = None) -> None:
        if not tiers:
            raise ConfigError("need at least one data center")
        self.name = name
        self.tiers = tiers
        self._down: set[str] = set()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        any_tier = next(iter(tiers.values()))
        policy = retry if retry is not None else RetryPolicy.no_retries()
        self._retrier = Retrier(policy, clock=any_tier.clock,
                                metrics=self.metrics,
                                scope=f"laser.{name}")
        self._failover_counter = self.metrics.counter(
            f"laser.{name}.failover_reads")
        self._stale_counter = self.metrics.counter(
            f"laser.{name}.stale_reads")
        self._unavailable_counter = self.metrics.counter(
            f"laser.{name}.unavailable_reads")
        # Last successfully served row per key: the serve-stale fallback
        # when every data center is unreachable.
        self._stale_cache: dict[tuple, Row | None] = {}

    def pump(self, max_messages: int = 1000) -> int:
        """Every tier ingests independently (automatic multiplexing)."""
        return sum(tier.pump(max_messages) for tier in self.tiers.values())

    def _serving_tier(self, preferred: str | None) -> LaserTable:
        if (preferred is not None and preferred in self.tiers
                and preferred not in self._down):
            return self.tiers[preferred]
        for name in sorted(self.tiers):
            if name not in self._down:
                return self.tiers[name]
        raise LaserError(f"table {self.name!r}: every data center is down")

    def get(self, *key_values: Any, datacenter: str | None = None
            ) -> Row | None:
        """Point lookup with retry, cross-datacenter failover, and a
        serve-stale last resort.

        The preferred tier is tried first (under the retry policy); an
        unavailable tier fails the read over to the next data center
        (``failover_reads``). If every tier is down, the last row served
        for this key is returned (``stale_reads``) — the bus will
        re-converge the tiers once they heal — and only a key never
        served before raises (``unavailable_reads``).
        """
        order = []
        if datacenter is not None and datacenter in self.tiers:
            order.append(datacenter)
        order.extend(n for n in sorted(self.tiers) if n not in order)
        last_error: Exception | None = None
        for position, tier_name in enumerate(order):
            if tier_name in self._down:
                continue
            try:
                row = self._retrier.call(self.tiers[tier_name].get,
                                         *key_values)
            # Accounted below, not here: every tier-miss ends in exactly
            # one of failover_reads / stale_reads / unavailable_reads.
            except StoreUnavailable as exc:  # lint: ignore[R004] counted below
                last_error = exc
                continue
            if position > 0:
                self._failover_counter.increment()
            self._stale_cache[key_values] = row
            return row
        if key_values in self._stale_cache:
            self._stale_counter.increment()
            return self._stale_cache[key_values]
        self._unavailable_counter.increment()
        raise LaserError(
            f"table {self.name!r}: every data center is down"
        ) from last_error

    def fail_datacenter(self, datacenter: str) -> None:
        if datacenter not in self.tiers:
            raise ConfigError(f"no tier in {datacenter!r}")
        self._down.add(datacenter)

    def restore_datacenter(self, datacenter: str) -> None:
        self._down.discard(datacenter)

    def lag_messages(self) -> int:
        return sum(
            sum(reader.lag_messages() for reader in tier._readers)
            for tier in self.tiers.values()
        )


class LaserService:
    """The Laser deployment: named tables, one-command create/delete."""

    def __init__(self, scribe: ScribeStore, clock: Clock | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.scribe = scribe
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tables: dict[str, LaserTable] = {}
        self._replicated: dict[str, ReplicatedLaserTable] = {}
        self.name = "laser"

    def create_table(self, name: str, key_columns: list[str],
                     value_columns: list[str],
                     lifetime_seconds: float = float("inf"),
                     scribe_category: str | None = None) -> LaserTable:
        """The one-command deploy of Section 6.3."""
        if name in self._tables:
            raise ConfigError(f"Laser table {name!r} already exists")
        table = LaserTable(name, key_columns, value_columns,
                           lifetime_seconds, clock=self.clock,
                           metrics=self.metrics)
        if scribe_category is not None:
            table.tail_scribe(self.scribe, scribe_category)
        self._tables[name] = table
        return table

    def delete_table(self, name: str) -> None:
        """The one-command delete of Section 6.3."""
        if name not in self._tables:
            raise ConfigError(f"no Laser table named {name!r}")
        del self._tables[name]

    def table(self, name: str) -> LaserTable:
        if name not in self._tables:
            raise ConfigError(f"no Laser table named {name!r}")
        return self._tables[name]

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def pump(self, max_messages: int = 1000) -> int:
        return (sum(t.pump(max_messages) for t in self._tables.values())
                + sum(t.pump(max_messages)
                      for t in self._replicated.values()))

    # -- multi-datacenter deployment (Sections 4.2.2 and 6.3) ------------------

    def create_replicated_table(self, name: str, key_columns: list[str],
                                value_columns: list[str],
                                data_centers: list[str],
                                scribe_category: str,
                                lifetime_seconds: float = float("inf"),
                                retry: RetryPolicy | None = None
                                ) -> ReplicatedLaserTable:
        """Deploy one app to several data centers, each tailing the bus."""
        if name in self._replicated or name in self._tables:
            raise ConfigError(f"Laser table {name!r} already exists")
        tiers = {}
        for datacenter in data_centers:
            tier = LaserTable(f"{name}@{datacenter}", key_columns,
                              value_columns, lifetime_seconds,
                              clock=self.clock, metrics=self.metrics)
            tier.tail_scribe(self.scribe, scribe_category)
            tiers[datacenter] = tier
        table = ReplicatedLaserTable(name, tiers, metrics=self.metrics,
                                     retry=retry)
        self._replicated[name] = table
        return table

    def replicated_table(self, name: str) -> ReplicatedLaserTable:
        if name not in self._replicated:
            raise ConfigError(f"no replicated Laser table named {name!r}")
        return self._replicated[name]
