"""Laser: the key-value serving layer (paper Section 2.5)."""

from repro.laser.service import LaserService, LaserTable

__all__ = ["LaserService", "LaserTable"]
