"""The macro-scenario harness: registry, result shape, digests.

The unit suites prove each layer in isolation; the scenarios in this
package compose the layers the way the paper's Figure 1 does — Scribe
between everything, Puma/Stylus over it, Laser/Scuba downstream — and
run *whole workloads* end to end on the simulated clock: a diurnal
traffic curve with a flash crowd, a Zipf hot key burying one shard, an
ads impression×click join, sessionization feeding trending topics, and
two tenants sharing one bus while one misbehaves.

Every scenario is a pure function of ``(scale, seed)``: simulated time
only, named RNG streams only, and a :class:`ScenarioResult` whose
:meth:`~ScenarioResult.digest` is stable across processes and
``PYTHONHASHSEED`` values. The determinism suite runs each scenario
twice and diffs the digests; the macro benchmark persists the measures
into ``BENCH_macro.json`` where ``benchmarks/check_regression.py``
enforces absolute floors (backpressure engaged, autoscaler acted, skew
visible, joins exact, tenants isolated).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.event import Event
from repro.errors import ConfigError
from repro.stylus.processor import Output, StatefulProcessor

#: The two supported sizes. ``smoke`` is the CI size (a few seconds per
#: scenario); ``full`` is the overnight size for local investigation.
SCALES = ("smoke", "full")


@dataclass
class ScenarioResult:
    """What one scenario run produced.

    ``checks`` are pass/fail invariants (the scenario's acceptance
    criteria); ``measures`` are the interesting magnitudes (peak lag,
    imbalance, shed counts) that the macro benchmark persists and floors.
    ``metrics_digest`` fingerprints the full metrics registry so two
    runs that agree on headline numbers but diverge in any counter still
    produce different digests.
    """

    name: str
    scale: str
    seed: int
    events_in: int
    events_processed: int
    modeled_elapsed: float
    final_lag: int
    checks: dict[str, bool] = field(default_factory=dict)
    measures: dict[str, float] = field(default_factory=dict)
    metrics_digest: str = ""

    @property
    def ok(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> list[str]:
        return sorted(name for name, passed in self.checks.items()
                      if not passed)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "scale": self.scale,
            "seed": self.seed,
            "events_in": self.events_in,
            "events_processed": self.events_processed,
            "modeled_elapsed": round(self.modeled_elapsed, 9),
            "final_lag": self.final_lag,
            "checks": {name: bool(value)
                       for name, value in sorted(self.checks.items())},
            "measures": {name: round(float(value), 9)
                         for name, value in sorted(self.measures.items())},
            "metrics_digest": self.metrics_digest,
        }

    def digest(self) -> str:
        """A stable fingerprint of the entire result."""
        payload = json.dumps(self.as_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.blake2b(payload.encode("utf-8"),
                               digest_size=16).hexdigest()


ScenarioFn = Callable[[str, int], ScenarioResult]

_REGISTRY: dict[str, ScenarioFn] = {}


def scenario(name: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register a scenario under ``name`` (module import registers it)."""

    def register(fn: ScenarioFn) -> ScenarioFn:
        if name in _REGISTRY:
            raise ConfigError(f"scenario {name!r} registered twice")
        _REGISTRY[name] = fn
        return fn

    return register


def scenario_names() -> list[str]:
    return sorted(_REGISTRY)


def run_scenario(name: str, scale: str = "smoke",
                 seed: int = 0) -> ScenarioResult:
    if scale not in SCALES:
        raise ConfigError(f"unknown scale {scale!r}; pick from {SCALES}")
    if name not in _REGISTRY:
        raise ConfigError(
            f"unknown scenario {name!r}; known: {scenario_names()}")
    return _REGISTRY[name](scale, seed)


def pick(scale: str, smoke: Any, full: Any) -> Any:
    """The per-scale parameter helper scenarios size themselves with."""
    if scale == "smoke":
        return smoke
    if scale == "full":
        return full
    raise ConfigError(f"unknown scale {scale!r}; pick from {SCALES}")


class CountProcessor(StatefulProcessor):
    """The Figure 6 counter, shared by scenarios that need ground truth:
    state is exactly how many events this bucket's task folded in."""

    def initial_state(self) -> dict[str, int]:
        return {"count": 0}

    def process(self, event: Event, state: dict[str, int]) -> list[Output]:
        state["count"] += 1
        return []


def topology_count(topology) -> int:
    """Total processed count across a CountProcessor topology's buckets."""
    topology.checkpoint_all()
    total = 0
    for shard_name in topology.shard_names():
        worker = topology.worker(shard_name)
        for bucket in worker.buckets():
            state, _ = worker.task(bucket).state_backend.load()
            if state is not None:
                total += state["count"]
    return total
