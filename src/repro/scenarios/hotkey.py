"""Scenario 2: Zipf hot-key skew burying one shard.

Real analytics traffic is Zipfian — a handful of pages/posts dominate —
and consistent hashing balances *keys*, not *load*. Here a steep Zipf
draw routes a large fraction of all events through one bucket, so one
shard of a four-shard topology does several times the cluster-average
work. Splitting cannot fix it (the hot bucket is indivisible), which is
exactly why the per-shard cost gauges exist: the makespan alone reads as
"cluster busy", while ``topology.hotkey.shard_cost_imbalance`` names the
problem.

Checks: counts stay exact despite the skew, the hottest bucket really
received a dominant share, and the imbalance/p99 gauges expose it.
"""

from __future__ import annotations

from repro.core.costs import CostModel
from repro.runtime.clock import SimClock
from repro.runtime.cluster import Cluster
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.rng import make_rng
from repro.runtime.topology import ShardedTopology, stylus_worker_factory
from repro.scenarios.base import (CountProcessor, ScenarioResult, pick,
                                  scenario, topology_count)
from repro.scribe.store import ScribeStore, default_bucketer
from repro.storage.backup import BackupEngine
from repro.storage.hdfs import HdfsBlobStore
from repro.workloads.zipf import ZipfSampler


@scenario("hot_key_skew")
def run(scale: str, seed: int) -> ScenarioResult:
    num_events = pick(scale, 4000, 40_000)
    num_keys = pick(scale, 500, 5000)
    num_buckets = 16
    exponent = 1.4

    clock = SimClock()
    metrics = MetricsRegistry()
    scribe = ScribeStore(clock=clock, metrics=metrics)
    scribe.create_category("events", num_buckets)
    hdfs = HdfsBlobStore(clock=clock, metrics=metrics)
    cluster = Cluster()
    for i in range(4):
        cluster.add_machine(f"m{i}")
    topology = ShardedTopology(
        "hotkey", cluster, scribe, "events", 4,
        stylus_worker_factory(scribe, "events", CountProcessor,
                              BackupEngine(hdfs), state_prefix="hotkey",
                              clock=clock, metrics=metrics),
        metrics=metrics, cost_model=CostModel(),
    )

    rng = make_rng(seed, "scenario:hotkey")
    sampler = ZipfSampler(num_keys, exponent, rng)
    bucket_hits = [0] * num_buckets
    for i in range(num_events):
        key = f"k{sampler.sample()}"
        bucket_hits[default_bucketer(key, num_buckets)] += 1
        scribe.write_record("events",
                            {"event_time": float(i), "page": key}, key=key)
        clock.advance(1.0 / 200.0)  # a steady modeled arrival rate

    topology.drain()
    processed = topology_count(topology)
    costs = topology.shard_costs()
    snapshot = metrics.snapshot()
    imbalance = snapshot.get("topology.hotkey.shard_cost_imbalance", 0.0)
    hottest_share = max(bucket_hits) / num_events

    return ScenarioResult(
        name="hot_key_skew", scale=scale, seed=seed,
        events_in=num_events,
        events_processed=processed,
        modeled_elapsed=topology.modeled_elapsed(),
        final_lag=topology.lag_messages(),
        checks={
            "exactly_once_counts": processed == num_events,
            "one_bucket_dominates": hottest_share > 2.0 / num_buckets,
            "skew_visible_in_imbalance_gauge": imbalance > 1.5,
            "p99_tracks_the_hot_shard": (
                snapshot.get("topology.hotkey.shard_cost_p99", 0.0)
                == snapshot.get("topology.hotkey.shard_cost_max", -1.0)),
            "lag_drained": topology.lag_messages() == 0,
        },
        measures={
            "hottest_bucket_share": hottest_share,
            "shard_cost_imbalance": imbalance,
            "shard_cost_p99": snapshot.get(
                "topology.hotkey.shard_cost_p99", 0.0),
            "shard_cost_spread": (max(costs.values())
                                  - min(costs.values())),
        },
        metrics_digest=metrics.digest(),
    )
