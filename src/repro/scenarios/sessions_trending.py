"""Scenario 4: user sessionization feeding trending topics.

Two product apps on one bus, both driven to a known answer:

* **Trending** (Figure 3): the four-node Filterer → Joiner → Scorer →
  Ranker DAG over a generated event stream with one scripted burst. The
  check is the product check — the burst topic ranks first in the last
  window — plus the Section 3 cache claim (sharding the Joiner input by
  dimension id keeps its lookup cache hot).
* **Sessionization**: a generated visit log with known session structure
  (bursts separated by more than the gap), folded by
  :class:`~repro.apps.sessions.SessionizeProcessor`. The check is exact:
  every scripted session closes, with the right event counts, and
  nothing else.

Both run on the same simulated clock and the same ScribeStore, the way
Figure 1 shares Scribe between every producer and consumer.
"""

from __future__ import annotations

from repro.apps.sessions import SessionizeProcessor
from repro.apps.trending import TrendingPipeline
from repro.laser.service import LaserTable
from repro.runtime.clock import SimClock
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.rng import make_rng
from repro.scenarios.base import ScenarioResult, pick, scenario
from repro.scribe.reader import CategoryReader
from repro.scribe.store import ScribeStore
from repro.scribe.writer import ScribeWriter
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusJob


@scenario("session_trending")
def run(scale: str, seed: int) -> ScenarioResult:
    duration = pick(scale, 300.0, 900.0)
    rate = pick(scale, 60.0, 150.0)
    burst_topic = "science"
    num_users = pick(scale, 40, 400)
    sessions_per_user = 3
    gap = 30.0

    clock = SimClock()
    metrics = MetricsRegistry()
    scribe = ScribeStore(clock=clock, metrics=metrics)

    # -- part A: the trending DAG chasing a scripted burst -----------------
    from repro.workloads.events import TrendBurst, TrendingEventsWorkload

    workload = TrendingEventsWorkload(
        seed=seed + 1,
        rate_per_second=rate,
        bursts=(TrendBurst(burst_topic, duration * 0.5, duration,
                           multiplier=30.0),),
    )
    dimensions = LaserTable("dims", ["dim_id"], ["language", "country"],
                            clock=clock)
    for row in workload.dimension_rows():
        dimensions.put_row(row)
    pipeline = TrendingPipeline(scribe, dimensions, clock=clock,
                                checkpoint_interval=30.0)

    writer = ScribeWriter(scribe, "trend_input")
    events = list(workload.generate(duration))
    index = 0
    for chunk_end in range(30, int(duration) + 60, 30):
        while (index < len(events)
               and events[index]["event_time"] <= chunk_end - 30):
            writer.write(events[index], key=events[index]["dim_id"])
            index += 1
        clock.advance_to(float(chunk_end))
        pipeline.pump()
    while index < len(events):
        writer.write(events[index], key=events[index]["dim_id"])
        index += 1
    pipeline.run_until_quiescent()
    pipeline.checkpoint_all()
    pipeline.run_until_quiescent()

    last_window = max(pipeline.ranker.windows("top_events_5min"))
    top = pipeline.ranker.top_events(3, last_window)
    # topk() aggregates materialize as score lists; the head is the max.
    top_score = float(top[0]["score"][0]) if top and top[0]["score"] else 0.0
    cache_hit_rate = pipeline.joiner_cache_hit_rate()

    # -- part B: sessionization with scripted session structure ------------
    scribe.create_category("visits", 4)
    scribe.create_category("sessions", 4)
    rng = make_rng(seed, "scenario:sessions")
    session_writer = ScribeWriter(scribe, "visits")
    visits = 0
    expected_events: dict[str, list[int]] = {}
    for u in range(num_users):
        user = f"u{u}"
        expected_events[user] = []
        start = rng.uniform(0.0, 60.0)
        for _ in range(sessions_per_user):
            count = rng.randrange(2, 6)
            t = start
            for _ in range(count):
                session_writer.write({"event_time": round(t, 3),
                                      "user": user}, key=user)
                visits += 1
                t += rng.uniform(1.0, gap * 0.5)
            expected_events[user].append(count)
            start = t + gap * rng.uniform(1.5, 3.0)  # well past the gap
    # A probe visit far in the future pushes every bucket's watermark
    # past the last scripted session so the final checkpoint closes it.
    # Probe keys are chosen so every bucket really receives one.
    from repro.scribe.store import default_bucketer

    needed = set(range(4))
    candidate = 0
    while needed:
        key = f"probe{candidate}"
        candidate += 1
        if default_bucketer(key, 4) not in needed:
            continue
        needed.discard(default_bucketer(key, 4))
        session_writer.write({"event_time": 100_000.0, "user": key}, key=key)
        visits += 1

    sessions_job = StylusJob.create(
        "sessions", scribe, "visits",
        lambda: SessionizeProcessor(gap_seconds=gap),
        output_category="sessions", clock=clock, metrics=metrics,
        checkpoint_policy=CheckpointPolicy(every_n_events=500),
    )
    while sessions_job.pump(10_000):
        pass
    sessions_job.checkpoint_now()

    closed: dict[str, list[int]] = {}
    for message in CategoryReader(scribe, "sessions").read_all():
        record = message.decode()
        closed.setdefault(record["user"], []).append(record["events"])
    for lists in closed.values():
        lists.sort()
    expected_sorted = {user: sorted(counts)
                       for user, counts in expected_events.items()}
    total_closed = sum(len(counts) for counts in closed.values())

    return ScenarioResult(
        name="session_trending", scale=scale, seed=seed,
        events_in=len(events) + visits,
        events_processed=total_closed,
        modeled_elapsed=clock.now(),
        final_lag=pipeline.scorer.lag_messages() + sessions_job.lag_messages(),
        checks={
            "burst_topic_ranks_first": bool(top)
            and top[0]["event"] == burst_topic,
            "joiner_cache_stays_hot": cache_hit_rate > 0.8,
            "all_scripted_sessions_closed": closed == expected_sorted,
            "session_count_exact": (
                total_closed == num_users * sessions_per_user),
            "lag_drained": (pipeline.scorer.lag_messages() == 0
                            and sessions_job.lag_messages() == 0),
        },
        measures={
            "trending_events": float(len(events)),
            "visits": float(visits),
            "sessions_closed": float(total_closed),
            "joiner_cache_hit_rate": cache_hit_rate,
            "burst_top_score": top_score,
            "classifier_calls": float(pipeline.classifier.calls),
        },
        metrics_digest=metrics.digest(),
    )
