"""Scenario 5: multi-tenant isolation on a shared bus.

Two Puma apps share one ScribeStore and one HBase namespace, the way
hundreds of Facebook teams share the production bus. Tenant A is
well-behaved: modest click traffic, pumped promptly, counted per page
per minute. Tenant B is the noisy neighbor: it floods its category far
past its consumer's capacity and its process crashes mid-run.

Isolation is per-category credit gates (Section 2.1: persistence to
Scribe decouples producers from consumers *per stream*): B's flood
exhausts B's credits and B's producer sheds, while A — same bus, same
storage — never blocks and stays byte-for-byte exact. B itself recovers
across the crash by replaying from its HBase checkpoint; a plain crash
lands *between* checkpoints, so the lost deltas are exactly the
replayed ones and B's counts stay exact too.
"""

from __future__ import annotations

from repro.puma.app import PumaApp
from repro.puma.parser import parse
from repro.puma.planner import plan
from repro.runtime.clock import SimClock
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.rng import make_rng
from repro.runtime.scheduler import Scheduler
from repro.scenarios.base import ScenarioResult, pick, scenario
from repro.scribe.store import ScribeStore
from repro.scribe.writer import ScribeWriter
from repro.storage.hbase import HBaseTable

TENANT_A_PQL = """
CREATE APPLICATION tenant_a;
CREATE INPUT TABLE clicks(event_time, page, user)
FROM SCRIBE("tenant_a_clicks") TIME event_time;
CREATE TABLE page_counts_1min AS
SELECT page, count(*) AS n FROM clicks [1 minute];
"""

TENANT_B_PQL = """
CREATE APPLICATION tenant_b;
CREATE INPUT TABLE logs(event_time, source)
FROM SCRIBE("tenant_b_logs") TIME event_time;
CREATE TABLE log_counts_1min AS
SELECT source, count(*) AS n FROM logs [1 minute];
"""

PAGES = ("home", "feed", "profile")


@scenario("multi_tenant")
def run(scale: str, seed: int) -> ScenarioResult:
    horizon = pick(scale, 120.0, 600.0)
    a_rate = 10          # tenant A writes/sec — always within capacity
    b_rate = pick(scale, 100, 300)   # tenant B attempts/sec — far beyond
    b_pump_budget = 40   # tenant B consumer capacity, messages/sec
    max_outstanding = 100
    crash_at = horizon * 0.4

    clock = SimClock()
    scheduler = Scheduler(clock)
    metrics = MetricsRegistry()
    scribe = ScribeStore(clock=clock, metrics=metrics)
    scribe.create_category("tenant_a_clicks", 4)
    scribe.create_category("tenant_b_logs", 4)
    scribe.enable_backpressure("tenant_a_clicks",
                               max_outstanding=max_outstanding)
    scribe.enable_backpressure("tenant_b_logs",
                               max_outstanding=max_outstanding)
    hbase = HBaseTable("puma_shared")  # row keys are app-prefixed
    app_a = PumaApp(plan(parse(TENANT_A_PQL)), scribe, hbase,
                    clock=clock, metrics=metrics)
    app_b = PumaApp(plan(parse(TENANT_B_PQL)), scribe, hbase,
                    clock=clock, metrics=metrics)

    rng = make_rng(seed, "scenario:multitenant")
    writer_a = ScribeWriter(scribe, "tenant_a_clicks")
    writer_b = ScribeWriter(scribe, "tenant_b_logs")
    ledger = {"a_accepted": 0, "a_shed": 0, "b_accepted": 0, "b_shed": 0}
    truth_a: dict[tuple[float, str], int] = {}

    def produce_a() -> None:
        now = clock.now()
        window = float(int(now // 60) * 60)
        for i in range(a_rate):
            page = PAGES[(int(now) + i) % len(PAGES)]
            record = {"event_time": now, "page": page,
                      "user": f"u{rng.randrange(50)}"}
            if writer_a.try_write(record, key=record["user"]) is None:
                ledger["a_shed"] += 1
            else:
                ledger["a_accepted"] += 1
                truth_a[(window, page)] = truth_a.get((window, page), 0) + 1

    def produce_b() -> None:
        now = clock.now()
        for _ in range(b_rate):
            record = {"event_time": now,
                      "source": f"s{rng.randrange(8)}"}
            if writer_b.try_write(record, key=record["source"]) is None:
                ledger["b_shed"] += 1
            else:
                ledger["b_accepted"] += 1

    scheduler.every(1.0, produce_a)
    scheduler.every(1.0, produce_b)
    scheduler.every(1.0, lambda: app_a.pump(1000))
    scheduler.every(1.0, lambda: None if app_b.crashed
                    else app_b.pump(b_pump_budget))
    scheduler.at(crash_at, app_b.crash)
    scheduler.at(crash_at + 10.0, app_b.restart)
    scheduler.run_until(horizon)

    while app_a.pump(10_000):
        pass
    while app_b.pump(10_000):
        pass
    app_a.checkpoint()
    app_b.checkpoint()

    queried_a = {
        (row["window_start"], row["page"]): row["n"]
        for row in app_a.query("page_counts_1min")
    }
    b_total = sum(row["n"] for row in app_b.query("log_counts_1min"))

    return ScenarioResult(
        name="multi_tenant", scale=scale, seed=seed,
        events_in=ledger["a_accepted"] + ledger["b_accepted"],
        events_processed=sum(queried_a.values()) + b_total,
        modeled_elapsed=clock.now(),
        final_lag=app_a.lag_messages() + app_b.lag_messages(),
        checks={
            "tenant_a_exact": queried_a == truth_a,
            "tenant_a_never_blocked": ledger["a_shed"] == 0,
            "noisy_neighbor_blocked": ledger["b_shed"] > 0,
            "tenant_b_exact_across_crash": b_total == ledger["b_accepted"],
            "lag_drained": (app_a.lag_messages() == 0
                            and app_b.lag_messages() == 0),
        },
        measures={
            "a_accepted": float(ledger["a_accepted"]),
            "b_accepted": float(ledger["b_accepted"]),
            "b_shed": float(ledger["b_shed"]),
            "b_shed_fraction": (ledger["b_shed"]
                                / max(1, ledger["b_shed"]
                                      + ledger["b_accepted"])),
            "credits_blocked": metrics.snapshot().get(
                "scribe.credits.blocked", 0.0),
        },
        metrics_digest=metrics.digest(),
    )
