"""Macro scenarios: whole workloads, end to end, on the simulated clock.

Importing this package registers all five scenarios; run them with
:func:`run_scenario` or from the command line::

    python -m repro.scenarios all --scale smoke
"""

from repro.scenarios.base import (SCALES, ScenarioResult, run_scenario,
                                  scenario_names)

# Importing the modules registers each scenario with the base registry.
from repro.scenarios import adjoin as _adjoin  # noqa: F401
from repro.scenarios import diurnal as _diurnal  # noqa: F401
from repro.scenarios import hotkey as _hotkey  # noqa: F401
from repro.scenarios import multitenant as _multitenant  # noqa: F401
from repro.scenarios import sessions_trending as _sessions  # noqa: F401

__all__ = ["SCALES", "ScenarioResult", "run_scenario", "scenario_names"]
