"""Scenario 1: diurnal traffic with a flash crowd.

One compressed "day" of traffic — a sinusoidal diurnal curve (Section 1:
realtime pipelines chase the daily usage cycle) with a flash-crowd spike
riding on top — against a sharded Stylus topology whose capacity is
fixed per shard. The spike outruns the initial deployment, so three
mechanisms must engage, in order:

1. **Backpressure**: the category's credit gate blocks the producer once
   per-bucket backlog hits the limit; the producer sheds (and counts)
   what it could not write, so bucket depth stays bounded.
2. **Autoscaling**: sustained lag above the high-water mark splits the
   topology live (pause → transfer → resume) — capacity doubles.
3. **Draining**: once the spike passes, lag drains, sustained idleness
   merges the topology back down.

The scenario's exactness check is the simplest possible ledger: every
write the gate accepted is counted exactly once by the counter state.
"""

from __future__ import annotations

import math

from repro.monitoring.autoscaler import AutoScaler
from repro.runtime.clock import SimClock
from repro.runtime.cluster import Cluster
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.rng import make_rng
from repro.runtime.scheduler import Scheduler
from repro.runtime.topology import ShardedTopology, stylus_worker_factory
from repro.scenarios.base import (CountProcessor, ScenarioResult, pick,
                                  scenario, topology_count)
from repro.scribe.store import ScribeStore
from repro.scribe.writer import ScribeWriter
from repro.storage.backup import BackupEngine
from repro.storage.hdfs import HdfsBlobStore


@scenario("diurnal_flash_crowd")
def run(scale: str, seed: int) -> ScenarioResult:
    horizon = pick(scale, 240.0, 1200.0)
    base_rate = pick(scale, 30.0, 120.0)
    spike = pick(scale, (80.0, 120.0, 6.0), (400.0, 520.0, 8.0))
    num_buckets = 8
    shard_capacity = pick(scale, 60, 240)  # messages/sec one shard can do
    max_outstanding = pick(scale, 200, 800)
    high_lag = pick(scale, 500, 2000)

    clock = SimClock()
    scheduler = Scheduler(clock)
    metrics = MetricsRegistry()
    scribe = ScribeStore(clock=clock, metrics=metrics)
    scribe.create_category("events", num_buckets)
    scribe.enable_backpressure("events", max_outstanding=max_outstanding)
    hdfs = HdfsBlobStore(clock=clock, metrics=metrics)
    cluster = Cluster()
    for i in range(8):
        cluster.add_machine(f"m{i}")
    topology = ShardedTopology(
        "diurnal", cluster, scribe, "events", 2,
        stylus_worker_factory(scribe, "events", CountProcessor,
                              BackupEngine(hdfs), state_prefix="diurnal",
                              clock=clock, metrics=metrics),
        metrics=metrics,
    )
    scaler = AutoScaler(scribe, clock=clock, high_lag=high_lag,
                        sustain_samples=2, idle_samples_for_downscale=4,
                        cooldown_seconds=30.0, metrics=metrics)
    scaler.watch(topology, topology=topology)

    def rate_at(now: float) -> float:
        diurnal = base_rate * (0.7 + 0.3 * math.sin(
            2.0 * math.pi * now / horizon))
        start, end, multiplier = spike
        if start <= now < end:
            diurnal *= multiplier
        return diurnal

    rng = make_rng(seed, "scenario:diurnal:keys")
    writer = ScribeWriter(scribe, "events")
    ledger = {"accepted": 0, "shed": 0, "peak_lag": 0}

    def produce() -> None:
        now = clock.now()
        for _ in range(int(rate_at(now))):
            record = {"event_time": now, "user": f"u{rng.randrange(10_000)}"}
            if writer.try_write(record, key=record["user"]) is None:
                ledger["shed"] += 1  # backpressure: shed, don't queue
            else:
                ledger["accepted"] += 1

    def pump() -> None:
        # Capacity is per *shard*: splitting genuinely adds throughput,
        # which is what makes the autoscaler's lever real.
        budget = max(1, shard_capacity * topology.num_shards // num_buckets)
        topology.pump_all(budget)
        ledger["peak_lag"] = max(ledger["peak_lag"], topology.lag_messages())

    scheduler.every(1.0, produce)
    scheduler.every(1.0, pump)
    scheduler.every(5.0, scaler.sample)
    scheduler.run_until(horizon)

    peak_shards = max((action.new_buckets for action in scaler.actions),
                      default=topology.num_shards)
    while topology.lag_messages() > 0:
        topology.pump_all(10_000)
    processed = topology_count(topology)
    snapshot = metrics.snapshot()
    scale_ups = sum(1 for a in scaler.actions if a.kind == "scale_up")
    scale_downs = sum(1 for a in scaler.actions if a.kind == "scale_down")

    return ScenarioResult(
        name="diurnal_flash_crowd", scale=scale, seed=seed,
        events_in=ledger["accepted"],
        events_processed=processed,
        modeled_elapsed=clock.now(),
        final_lag=topology.lag_messages(),
        checks={
            "exactly_all_accepted_counted": processed == ledger["accepted"],
            "backpressure_engaged": ledger["shed"] > 0,
            "autoscaler_scaled_up": scale_ups >= 1,
            "autoscaler_scaled_back_down": scale_downs >= 1,
            "spike_raised_lag": ledger["peak_lag"] > high_lag,
            "lag_drained": topology.lag_messages() == 0,
        },
        measures={
            "events_shed": float(ledger["shed"]),
            "peak_lag": float(ledger["peak_lag"]),
            "peak_shards": float(peak_shards),
            "scaling_actions": float(len(scaler.actions)),
            "credits_blocked": snapshot.get("scribe.credits.blocked", 0.0),
            "rebalances": snapshot.get("topology.diurnal.rebalances", 0.0),
        },
        metrics_digest=metrics.digest(),
    )
