"""Scenario 3: ads impression × click stream-stream join.

The ads pipeline shape: an impressions stream and a clicks stream,
co-partitioned by ad id onto one Scribe category, joined by a Stylus job
whose buffers are watermark-bounded (see :mod:`repro.stylus.join`).
Ground truth is generated: a known fraction of impressions get a click
inside the join window, a smaller fraction get one *outside* it, and the
two sides arrive interleaved and disordered. The join must find exactly
the in-window pairs — no false joins from the out-of-window clicks, no
misses from disorder — and the buffers must shrink back once the
watermark passes, or a day of traffic would hold a day of impressions.
"""

from __future__ import annotations

from repro.runtime.clock import SimClock
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.rng import make_rng
from repro.scenarios.base import ScenarioResult, pick, scenario
from repro.scribe.reader import CategoryReader
from repro.scribe.store import ScribeStore
from repro.scribe.writer import ScribeWriter
from repro.stylus.checkpointing import CheckpointPolicy
from repro.stylus.engine import StylusJob
from repro.stylus.join import StreamStreamJoinProcessor


@scenario("ad_click_join")
def run(scale: str, seed: int) -> ScenarioResult:
    num_impressions = pick(scale, 1500, 20_000)
    window = 10.0
    click_rate = 0.3        # clicks landing inside the join window
    late_click_rate = 0.05  # clicks landing outside it (must not join)
    num_buckets = 4

    clock = SimClock()
    metrics = MetricsRegistry()
    scribe = ScribeStore(clock=clock, metrics=metrics)
    scribe.create_category("ad_events", num_buckets)
    scribe.create_category("ad_joined", num_buckets)

    rng = make_rng(seed, "scenario:adjoin")
    arrivals: list[tuple[float, dict]] = []
    expected_joins = 0
    for i in range(num_impressions):
        shown_at = i / 100.0
        ad = f"ad{i}"
        arrivals.append((shown_at + rng.uniform(0.0, 1.0), {
            "event_time": round(shown_at, 3), "stream": "impressions",
            "ad_id": ad, "slot": i % 5,
        }))
        draw = rng.random()
        if draw < click_rate:
            clicked_at = shown_at + rng.uniform(0.0, window * 0.8)
            expected_joins += 1
        elif draw < click_rate + late_click_rate:
            clicked_at = shown_at + window * rng.uniform(1.5, 3.0)
        else:
            continue
        arrivals.append((clicked_at + rng.uniform(0.0, 1.0), {
            "event_time": round(clicked_at, 3), "stream": "clicks",
            "ad_id": ad, "user": f"u{rng.randrange(1000)}",
        }))
    arrivals.sort(key=lambda pair: (pair[0], pair[1]["ad_id"]))

    job = StylusJob.create(
        "adjoin", scribe, "ad_events",
        lambda: StreamStreamJoinProcessor(
            "impressions", "clicks", "ad_id", window_seconds=window,
            emit_unmatched_left=True),
        output_category="ad_joined", clock=clock, metrics=metrics,
        checkpoint_policy=CheckpointPolicy(every_n_events=200),
    )

    writer = ScribeWriter(scribe, "ad_events")
    written = 0
    for arrival, record in arrivals:
        clock.advance_to(max(clock.now(), arrival))
        writer.write(record, key=record["ad_id"])
        written += 1
        if written % 500 == 0:
            job.pump(10_000)
    while job.pump(10_000):
        pass
    job.checkpoint_now()  # final watermark pass: evict + emit unmatched

    joined = 0
    unmatched = 0
    for message in CategoryReader(scribe, "ad_joined").read_all():
        if message.decode().get("unmatched"):
            unmatched += 1
        else:
            joined += 1
    buffered = sum(
        StreamStreamJoinProcessor.buffered_entries(task.state)
        for task in job.tasks)

    return ScenarioResult(
        name="ad_click_join", scale=scale, seed=seed,
        events_in=written,
        events_processed=joined + unmatched,
        modeled_elapsed=clock.now(),
        final_lag=job.lag_messages(),
        checks={
            "joins_exact": joined == expected_joins,
            "no_late_click_joined": joined <= expected_joins,
            "buffers_bounded_by_watermark": buffered < written // 4,
            "unmatched_impressions_surfaced": unmatched > 0,
            "lag_drained": job.lag_messages() == 0,
        },
        measures={
            "expected_joins": float(expected_joins),
            "joined": float(joined),
            "unmatched": float(unmatched),
            "buffered_after_final_checkpoint": float(buffered),
            "join_exactness": 1.0 if joined == expected_joins else 0.0,
        },
        metrics_digest=metrics.digest(),
    )
