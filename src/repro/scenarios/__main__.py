"""CLI for the macro scenarios.

``python -m repro.scenarios all --scale smoke`` runs everything and
prints one result block per scenario; ``--digest`` prints one
``name digest`` line per run instead (what the determinism suite and CI
diff against a second run).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.scenarios import SCALES, run_scenario, scenario_names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run the end-to-end macro scenarios.")
    parser.add_argument("scenario",
                        help="a scenario name, or 'all'")
    parser.add_argument("--scale", choices=SCALES, default="smoke")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--digest", action="store_true",
                        help="print only 'name digest' lines (for diffing)")
    options = parser.parse_args(argv)

    if options.scenario == "all":
        names = scenario_names()
    elif options.scenario in scenario_names():
        names = [options.scenario]
    else:
        parser.error(f"unknown scenario {options.scenario!r}; "
                     f"known: {', '.join(scenario_names())} (or 'all')")

    failed = []
    for name in names:
        result = run_scenario(name, scale=options.scale, seed=options.seed)
        if options.digest:
            print(f"{name} {result.digest()}")
        else:
            print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        if not result.ok:
            failed.append((name, result.failed_checks()))
    for name, checks in failed:
        print(f"FAILED {name}: {', '.join(checks)}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
