"""Checkpoint policy and deterministic crash injection.

The semantics differences of Figure 7 only become visible when a failure
lands at a specific point in the checkpoint procedure (e.g. after the
state write but before the offset write). :class:`CrashInjector` lets an
experiment arm a crash at a named :class:`CrashPoint` of a specific
checkpoint, deterministically; property tests arm random points and
check the semantics invariants always hold.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError, ProcessCrashed


class CrashPoint(enum.Enum):
    """Named vulnerable points in the processing/checkpoint cycle."""

    BEFORE_CHECKPOINT = "before_checkpoint"
    AFTER_FIRST_SAVE = "after_first_save"    # between the two-phase writes
    AFTER_CHECKPOINT = "after_checkpoint"    # saved, output not yet emitted
    AFTER_EMIT = "after_emit"                 # everything done for this cycle
    DURING_PROCESSING = "during_processing"   # mid-batch, no checkpoint near


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to checkpoint: every N seconds, every N events, or both.

    Whichever trigger fires first wins (both reset after a checkpoint).
    """

    interval_seconds: float | None = None
    every_n_events: int | None = None

    def __post_init__(self) -> None:
        if self.interval_seconds is None and self.every_n_events is None:
            raise ConfigError("checkpoint policy needs a time or event trigger")
        if self.interval_seconds is not None and self.interval_seconds <= 0:
            raise ConfigError("interval_seconds must be positive")
        if self.every_n_events is not None and self.every_n_events < 1:
            raise ConfigError("every_n_events must be >= 1")

    def due(self, now: float, last_checkpoint_at: float,
            events_since: int) -> bool:
        if (self.every_n_events is not None
                and events_since >= self.every_n_events):
            return True
        if (self.interval_seconds is not None
                and now - last_checkpoint_at >= self.interval_seconds):
            return True
        return False


class CrashInjector:
    """Arms crashes at (crash point, checkpoint index) pairs.

    The engine calls :meth:`fire` at each vulnerable point; if a crash is
    armed there for the current checkpoint index, :class:`ProcessCrashed`
    is raised — which the engine treats as the process dying on the spot.
    """

    def __init__(self) -> None:
        self._armed: dict[tuple[CrashPoint, int], bool] = {}
        self.crashes_fired = 0

    def arm(self, point: CrashPoint, checkpoint_index: int) -> None:
        self._armed[(point, checkpoint_index)] = True

    def fire(self, point: CrashPoint, checkpoint_index: int,
             task_name: str, now: float) -> None:
        if self._armed.pop((point, checkpoint_index), None):
            self.crashes_fired += 1
            raise ProcessCrashed(f"{task_name} ({point.value})", now)

    def armed_count(self) -> int:
        return len(self._armed)


class NoCrashes(CrashInjector):
    """An injector that never fires (the default)."""

    def fire(self, point: CrashPoint, checkpoint_index: int,
             task_name: str, now: float) -> None:
        return None
