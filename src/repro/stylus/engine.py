"""The Stylus execution engine.

A :class:`StylusTask` consumes one Scribe bucket with one processor and
one semantics policy. The checkpoint procedure implements Section 4.3.1
literally — the *order* of the state/offset/output saves is what defines
the semantics:

- at-least-once state: save state, then offset;
- at-most-once state: save offset, then state;
- exactly-once: save both (plus pending output) atomically;
- at-least-once output: emit while processing (before the checkpoint);
- at-most-once output: hold output, checkpoint, then emit;
- exactly-once output: output rides in the checkpoint transaction.

Crashes can be injected at every vulnerable point
(:class:`~repro.stylus.checkpointing.CrashInjector`), which is how the
Figure 7 experiment and the semantics property tests exercise failures.

Tasks optionally account their work against a
:class:`~repro.core.costs.CostModel` on a
:class:`~repro.core.costs.ResourceTimeline`, in one of two execution
strategies:

- ``overlapped`` — the Stylus way: side-effect-free work (deserialization)
  proceeds concurrently with receiving and with checkpoint waits;
- ``buffered`` — the Swift-implementation way of Figure 9: buffer raw
  input between checkpoints, then deserialize/process/emit in a burst.

Both strategies produce identical *results*; they differ only in the
modeled timeline — which is exactly the paper's point.
"""

from __future__ import annotations

import enum
from typing import Any

from repro import serde
from repro.core.costs import CostModel, ResourceTimeline
from repro.core.event import Event
from repro.core.semantics import SemanticsPolicy, StateSemantics
from repro.core.watermark import WatermarkEstimator
from repro.errors import CheckpointError, ProcessCrashed, ProcessingError
from repro.serde import SerdeError
from repro.runtime.clock import Clock, WallClock
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.retry import RETRYABLE, Retrier, RetryPolicy
from repro.scribe.message import Message
from repro.scribe.reader import ScribeReader
from repro.scribe.store import ScribeStore
from repro.scribe.writer import ScribeWriter
from repro.stylus.checkpointing import (
    CheckpointPolicy,
    CrashInjector,
    CrashPoint,
    NoCrashes,
)
from repro.stylus.processor import (
    MonoidProcessor,
    Output,
    StatefulProcessor,
    StatelessProcessor,
)
from repro.stylus.state import InMemoryStateBackend, StateBackend

Processor = StatelessProcessor | StatefulProcessor | MonoidProcessor


class Strategy(enum.Enum):
    """Execution strategy for cost accounting (see module docstring)."""

    OVERLAPPED = "overlapped"
    BUFFERED = "buffered"


class StylusTask:
    """One processor instance bound to one input bucket."""

    def __init__(self, name: str, scribe: ScribeStore, input_category: str,
                 bucket: int, processor: Processor,
                 semantics: SemanticsPolicy | None = None,
                 state_backend: StateBackend | None = None,
                 checkpoint_policy: CheckpointPolicy | None = None,
                 output_category: str | None = None,
                 clock: Clock | None = None,
                 crash_injector: CrashInjector | None = None,
                 time_field: str = "event_time",
                 cost_model: CostModel | None = None,
                 strategy: Strategy = Strategy.OVERLAPPED,
                 metrics: MetricsRegistry | None = None,
                 max_batch_bytes: int | None = None,
                 retry_policy: RetryPolicy | None = None) -> None:
        self.name = name
        self.scribe = scribe
        self.processor = processor
        self.semantics = semantics or SemanticsPolicy.at_least_once()
        self.state_backend = state_backend or InMemoryStateBackend(name)
        self.checkpoint_policy = checkpoint_policy or CheckpointPolicy(
            every_n_events=100
        )
        self.clock = clock if clock is not None else WallClock()
        self.injector = crash_injector or NoCrashes()
        self.time_field = time_field
        self.cost_model = cost_model
        self.strategy = strategy
        self.timeline = ResourceTimeline() if cost_model else None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.watermarks = WatermarkEstimator()
        self.max_batch_bytes = max_batch_bytes

        # Metric handles resolved once: the registry returns the same
        # object for a name forever, so re-resolving through its dicts
        # (plus an f-string) on every event is pure per-event tax.
        registry = self.metrics
        self._events_counter = registry.counter(f"stylus.{name}.events")
        self._bytes_counter = registry.counter(f"stylus.{name}.bytes")
        self._poison_counter = registry.counter(f"stylus.{name}.poison")
        self._outputs_counter = registry.counter(f"stylus.{name}.outputs")
        self._checkpoints_counter = registry.counter(
            f"stylus.{name}.checkpoints")
        self._crashes_counter = registry.counter(f"stylus.{name}.crashes")
        self._lag_gauge = registry.gauge(f"stylus.{name}.lag")
        self._deferred_counter = registry.counter(
            f"stylus.{name}.checkpoints_deferred")
        self._dropped_counter = registry.counter(
            f"stylus.{name}.partials_dropped")
        # State saves go through a retrier; backoff charges the sim clock.
        # A second no-retry retrier (same scope, same counters) covers the
        # one save that must not be re-driven after a partial failure.
        policy = retry_policy if retry_policy is not None \
            else RetryPolicy.no_retries()
        scope = f"stylus.{name}.state"
        self._retrier = Retrier(policy, clock=self.clock,
                                metrics=registry, scope=scope)
        self._once = Retrier(RetryPolicy.no_retries(), clock=self.clock,
                             metrics=registry, scope=scope)
        # Test hook: force the per-message decode path even when the
        # batched fast path would apply (equivalence property tests).
        self._force_per_message = False

        self._reader = ScribeReader(scribe, input_category, bucket)
        self._writer = (ScribeWriter(scribe, output_category)
                        if output_category else None)

        if isinstance(processor, StatefulProcessor):
            self._state: Any = processor.initial_state()
        else:
            self._state = None
        self._partials: dict[str, Any] = {}
        self._pending_output: list[Output] = []
        self._raw_buffer: list[Message] = []
        self._events_since_checkpoint = 0
        self._last_checkpoint_at = self._now()
        self._checkpoint_index = 0
        self.crashed = False
        self._start_offset = self._reader.position
        # The offset just past the last message consumed by the processor.
        # This — not the reader's batch position, which runs ahead — is
        # what checkpoints record, so a crash mid-batch replays correctly.
        self._next_offset = self._reader.position

    # -- time --------------------------------------------------------------

    def _now(self) -> float:
        """Checkpoint-relevant time: modeled when a cost model is attached."""
        if self.timeline is not None:
            return self.timeline.elapsed()
        return self.clock.now()

    # -- public surface ------------------------------------------------------

    @property
    def state(self) -> Any:
        """The live in-memory state (stateful processors)."""
        return self._state

    @property
    def partials(self) -> dict[str, Any]:
        """The live in-memory partial states (monoid processors)."""
        return self._partials

    @property
    def position(self) -> int:
        return self._reader.position

    def lag_messages(self) -> int:
        return self._reader.lag_messages()

    def low_watermark(self, confidence: float = 0.99) -> float | None:
        """Stylus's event-time low-watermark estimate (Section 2.4)."""
        return self.watermarks.low_watermark(confidence)

    def pump(self, max_messages: int = 1000) -> int:
        """Process up to ``max_messages`` pending inputs; return count.

        An injected crash stops the task mid-cycle; it stays down until
        :meth:`restart`.
        """
        if self.crashed:
            return 0
        try:
            return self._pump(max_messages)
        except ProcessCrashed:
            self._die()
            return 0

    def checkpoint_now(self) -> None:
        """Force a checkpoint immediately (tests and shutdown paths)."""
        if self.crashed:
            raise CheckpointError(f"task {self.name!r} is down")
        try:
            self._checkpoint()
        except ProcessCrashed:
            self._die()

    # -- the processing loop ------------------------------------------------------

    def _pump(self, max_messages: int) -> int:
        processed = 0
        while processed < max_messages:
            batch = self._reader.read_batch(
                min(100, max_messages - processed),
                max_bytes=self.max_batch_bytes,
            )
            if not batch:
                break
            if self._use_batched_decode():
                # Deserialization is side-effect-free (the overlapped
                # strategy's defining property), so the whole batch is
                # decoded up front in one serde pass, then processed
                # message by message with unchanged checkpoint cadence.
                events = self._decode_batch(batch)
                if self._chunk_at_checkpoints():
                    processed += self._process_chunked(batch, events)
                    continue
            else:
                events = None
            for index, message in enumerate(batch):
                self._charge_receive(message)
                if events is not None:
                    event = events[index]
                    if event is not None:
                        self._route(self._process_event(event))
                elif self.strategy == Strategy.BUFFERED:
                    self._raw_buffer.append(message)
                else:
                    self._handle_message(message)
                self._next_offset = message.offset + 1
                self._events_since_checkpoint += 1
                processed += 1
                self.injector.fire(CrashPoint.DURING_PROCESSING,
                                   self._checkpoint_index + 1,
                                   self.name, self._now())
                if self.checkpoint_policy.due(
                        self._now(), self._last_checkpoint_at,
                        self._events_since_checkpoint):
                    self._checkpoint()
        self._lag_gauge.set(self.lag_messages())
        return processed

    def _use_batched_decode(self) -> bool:
        """Whether the up-front batch-decode fast path applies.

        Disabled when a cost model is attached (the modeled timeline
        charges receive/deserialize in per-message interleaving) or when
        crashes can be injected (a mid-batch crash must not have decoded
        — observed watermarks, counted — messages past the crash point).
        Results are identical either way; the property suite asserts it.
        """
        return (self.strategy == Strategy.OVERLAPPED
                and self.cost_model is None
                and isinstance(self.injector, NoCrashes)
                and not self._force_per_message)

    def _chunk_at_checkpoints(self) -> bool:
        """Whether whole chunks can go to the processor in one call.

        Only an event-count-only checkpoint policy makes checkpoint
        positions a pure function of the message count, letting the loop
        split a decoded batch into checkpoint-aligned chunks up front.
        A time trigger could fire anywhere, so it keeps the per-message
        cadence. (Callers have already established ``_use_batched_decode``,
        so no cost model or crash injection is active here.)
        """
        policy = self.checkpoint_policy
        return (policy.every_n_events is not None
                and policy.interval_seconds is None)

    def _process_chunked(self, batch: list[Message],
                         events: list[Event | None]) -> int:
        """Process a decoded batch in checkpoint-aligned chunks.

        Each chunk ends exactly where the per-message loop would have
        checkpointed (poison messages count toward the cadence there
        too), so checkpoint offsets, emission order, and final state are
        identical — with one processor call and one offset/counter
        update per chunk instead of per event.
        """
        every_n = self.checkpoint_policy.every_n_events
        index = 0
        total = len(batch)
        while index < total:
            take = min(every_n - self._events_since_checkpoint,
                       total - index)
            chunk = [event for event in events[index:index + take]
                     if event is not None]
            if chunk:
                self._route(self._process_events(chunk))
            index += take
            self._next_offset = batch[index - 1].offset + 1
            self._events_since_checkpoint += take
            if self._events_since_checkpoint >= every_n:
                self._checkpoint()
        return total

    def _process_events(self, events: list[Event]) -> list[Output]:
        """Run a chunk through the processor with per-chunk dispatch."""
        processor = self.processor
        if isinstance(processor, StatefulProcessor):
            return processor.process_batch(events, self._state)
        if isinstance(processor, StatelessProcessor):
            outputs: list[Output] = []
            extend = outputs.extend
            process = processor.process
            for event in events:
                extend(process(event))
            return outputs
        operator = processor.merge_operator()
        merge = operator.merge
        extract = processor.extract
        partials = self._partials
        get = partials.get
        for event in events:
            for key, delta in extract(event):
                base = get(key)
                partials[key] = (delta if base is None
                                 else merge(base, delta))
        return []

    def _decode_batch(self, messages: list[Message]) -> list[Event | None]:
        """Decode a batch in one pass; ``None`` marks a poison message."""
        records = serde.decode_batch(
            [message.payload for message in messages], errors="none"
        )
        from_record = Event.from_record
        time_field = self.time_field
        events: list[Event | None] = []
        append = events.append
        times: list[float] = []
        times_append = times.append
        poison = 0
        good_bytes = 0
        for message, record in zip(messages, records):
            if record is None:
                poison += 1
                append(None)
                continue
            try:
                event = from_record(record, time_field)
            except ProcessingError:
                poison += 1
                append(None)
                continue
            times_append(event.event_time)
            good_bytes += message.size
            append(event)
        if poison:
            self._poison_counter.increment(poison)
        if times:
            self.watermarks.observe_batch(times)
            self._events_counter.increment(len(times))
            self._bytes_counter.increment(good_bytes)
        return events

    def _handle_message(self, message: Message) -> None:
        try:
            event = self._decode(message)
        except (SerdeError, ProcessingError):
            # A poison message must not wedge the consumer: count it,
            # skip it, keep draining (hundreds of pipelines cannot page
            # a human for every malformed log line).
            self._poison_counter.increment()
            return
        outputs = self._process_event(event)
        self._route(outputs)

    def _decode(self, message: Message) -> Event:
        self._charge_cpu(self.cost_model.deserialize_per_event
                         if self.cost_model else 0.0)
        event = Event.from_message(message, self.time_field)
        self.watermarks.observe(event.event_time)
        self._events_counter.increment()
        self._bytes_counter.increment(message.size)
        return event

    def _process_event(self, event: Event) -> list[Output]:
        self._charge_cpu(self.cost_model.process_per_event
                         if self.cost_model else 0.0)
        if isinstance(self.processor, StatelessProcessor):
            return self.processor.process(event)
        if isinstance(self.processor, StatefulProcessor):
            return self.processor.process(event, self._state)
        operator = self.processor.merge_operator()
        for key, delta in self.processor.extract(event):
            base = self._partials.get(key)
            self._partials[key] = (delta if base is None
                                   else operator.merge(base, delta))
        return []

    def _route(self, outputs: list[Output]) -> None:
        if not outputs:
            return
        if self.semantics.emits_before_checkpoint:
            self._emit(outputs)
        else:  # at-most-once or exactly-once output: hold until checkpoint
            self._pending_output.extend(outputs)

    def _emit(self, outputs: list[Output]) -> None:
        writer = self._writer
        outputs_counter = self._outputs_counter
        for output in outputs:
            if writer is not None:
                writer.write(output.record, key=output.key)
            outputs_counter.increment()

    # -- checkpointing --------------------------------------------------------------

    def _checkpoint(self) -> None:
        index = self._checkpoint_index + 1
        now = self._now()
        self.injector.fire(CrashPoint.BEFORE_CHECKPOINT, index,
                           self.name, now)

        if self.strategy == Strategy.BUFFERED:
            self._drain_buffer_for_checkpoint()

        # Periodic processor output (e.g. the Figure 6 counter emission).
        periodic = self._periodic_outputs(now)
        if self.semantics.emits_before_checkpoint:
            self._emit(periodic)
        else:
            self._pending_output.extend(periodic)

        offset = self._next_offset
        try:
            if self.semantics.state == StateSemantics.EXACTLY_ONCE:
                self._retrier.call(self._save_exactly_once, offset, index)
            elif self.semantics.state == StateSemantics.AT_LEAST_ONCE:
                self._retrier.call(self._save_payload)
                self.injector.fire(CrashPoint.AFTER_FIRST_SAVE, index,
                                   self.name, now)
                self._retrier.call(self.state_backend.save_offset, offset)
            else:  # at-most-once: offset first, then state
                self._retrier.call(self.state_backend.save_offset, offset)
                self.injector.fire(CrashPoint.AFTER_FIRST_SAVE, index,
                                   self.name, now)
                self._save_payload_at_most_once()
        except RETRYABLE:
            self._defer_checkpoint()
            return

        self._checkpoint_index = index
        self.injector.fire(CrashPoint.AFTER_CHECKPOINT, index,
                           self.name, now)

        if self.semantics.emits_after_checkpoint and self._pending_output:
            self._emit(self._pending_output)
            self._pending_output = []
        self.injector.fire(CrashPoint.AFTER_EMIT, index, self.name, now)

        self._charge_checkpoint_sync()
        self._events_since_checkpoint = 0
        self._last_checkpoint_at = self._now()
        self._checkpoints_counter.increment()

    def _periodic_outputs(self, now: float) -> list[Output]:
        if isinstance(self.processor, StatefulProcessor):
            return self.processor.on_checkpoint(self._state, now)
        if isinstance(self.processor, MonoidProcessor):
            return self.processor.on_checkpoint(self._partials, now)
        return []

    def _save_payload(self) -> None:
        """Persist the semantic payload: state, or monoid partials."""
        if isinstance(self.processor, StatefulProcessor):
            self.state_backend.save_state(self._state)
        elif isinstance(self.processor, MonoidProcessor):
            if self._partials:
                self.state_backend.flush_partials(
                    self._partials, self.processor.merge_operator()
                )
                self._partials = {}

    def _save_payload_at_most_once(self) -> None:
        """The at-most-once payload save, with its special failure rule.

        A monoid flush that fails may have applied some deltas; driving
        it again could double-count keys that did land, which at-most-once
        forbids. So the flush gets exactly one attempt, and on failure the
        partials are *dropped* and counted (``partials_dropped``) —
        undercounting is the direction this policy is allowed to err in.
        Stateful saves are absolute snapshots (idempotent), so they retry
        normally.
        """
        if isinstance(self.processor, MonoidProcessor):
            if not self._partials:
                return
            try:
                self._once.call(self.state_backend.flush_partials,
                                self._partials,
                                self.processor.merge_operator())
            except RETRYABLE:
                self._partials = {}
                self._dropped_counter.increment()
                return
            self._partials = {}
        else:
            self._retrier.call(self._save_payload)

    def _defer_checkpoint(self) -> None:
        """Degraded mode: the durable save stayed down past the retry budget.

        Nothing was lost — pending output, monoid partials, and the
        unadvanced checkpoint index all stay queued, and the next
        checkpoint folds this interval in (queue-and-drain). Only the
        cadence counters reset, so processing continues instead of
        re-triggering a doomed checkpoint on the very next event.
        """
        self._deferred_counter.increment()
        self._events_since_checkpoint = 0
        self._last_checkpoint_at = self._now()

    def _save_exactly_once(self, offset: int, index: int) -> None:
        if isinstance(self.processor, MonoidProcessor):
            self.state_backend.flush_partials_atomic(
                self._partials, self.processor.merge_operator(), offset,
                self._pending_output, index,
            )
            self._partials = {}
        else:
            self.state_backend.save_atomic_with_outputs(
                self._state, offset, self._pending_output, index
            )
        # Output is now durable in the transactional receiver.
        self._outputs_counter.increment(len(self._pending_output))
        self._pending_output = []

    # -- buffered (Swift-style) strategy ------------------------------------------------

    def _drain_buffer_for_checkpoint(self) -> None:
        """Deserialize and process everything buffered since last time.

        This is the Figure 9 Swift implementation: all CPU work for the
        interval happens here, in a burst, after idling while buffering.
        """
        buffered, self._raw_buffer = self._raw_buffer, []
        if self.timeline is not None:
            # The burst cannot start before receiving finished.
            self.timeline.barrier("receive", "cpu")
        if (self.cost_model is None and isinstance(self.injector, NoCrashes)
                and not self._force_per_message):
            # Same batched serde pass as the overlapped fast path; the
            # drain is already a burst, so there is nothing to interleave.
            for event in self._decode_batch(buffered):
                if event is not None:
                    self._route(self._process_event(event))
            return
        for message in buffered:
            self._handle_message(message)

    # -- failure handling ------------------------------------------------------------------

    def _die(self) -> None:
        """The process is gone: all in-memory artifacts are lost."""
        self.crashed = True
        self._state = None
        self._partials = {}
        self._pending_output = []
        self._raw_buffer = []
        self._crashes_counter.increment()

    def crash(self) -> None:
        """Kill the task from outside (chaos schedules use this)."""
        if not self.crashed:
            self._die()

    def restart(self) -> None:
        """Come back up from the last checkpoint (same machine).

        The checkpoint load is retried under the task's policy; if the
        backing store stays down past the budget, the task stays crashed
        and the caller retries the restart later.
        """
        state, offset = self._retrier.call(self.state_backend.load)
        # The backend is the source of truth for checkpoint numbering:
        # an adopted or failed-over task that restarted at index 0 would
        # overwrite the previous owner's committed output rows.
        self._checkpoint_index = self._retrier.call(
            self.state_backend.last_checkpoint_index
        )
        if isinstance(self.processor, StatefulProcessor):
            self._state = (state if state is not None
                           else self.processor.initial_state())
        self._partials = {}
        self._pending_output = []
        self._raw_buffer = []
        resume_at = offset if offset is not None else self._start_offset
        self._reader.seek(resume_at)
        self._next_offset = resume_at
        self._events_since_checkpoint = 0
        self._last_checkpoint_at = self._now()
        self.crashed = False

    # -- cost accounting ---------------------------------------------------------------------

    def _charge_receive(self, message: Message) -> None:
        if self.cost_model is None:
            return
        self.timeline.charge("receive", self.cost_model.receive_per_event)

    def _charge_cpu(self, seconds: float) -> None:
        if self.cost_model is None or seconds == 0.0:
            return
        not_before = (self.timeline.resources.get("receive", 0.0)
                      if self.strategy == Strategy.OVERLAPPED else 0.0)
        self.timeline.charge("cpu", seconds, not_before=not_before)

    def _charge_checkpoint_sync(self) -> None:
        if self.cost_model is None:
            return
        if self.strategy == Strategy.OVERLAPPED:
            # Side-effect-free work continues; only the emit path waits.
            self.timeline.charge("checkpoint", self.cost_model.checkpoint_sync)
        else:
            # The buffered processor stalls completely during the sync.
            self.timeline.barrier("receive", "cpu")
            self.timeline.charge("cpu", self.cost_model.checkpoint_sync)
            self.timeline.barrier("receive", "cpu")


class StylusJob:
    """A named set of tasks, one per input bucket, driven together.

    Implements the :class:`~repro.core.dag.Pumpable` protocol so a job is
    directly a DAG node. Factory classmethods build the per-bucket tasks
    with shared configuration.
    """

    def __init__(self, name: str, tasks: list[StylusTask],
                 scribe: ScribeStore | None = None,
                 input_category_name: str | None = None,
                 processor_factory=None,
                 task_kwargs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.tasks = tasks
        self._scribe = scribe
        self._input_category = input_category_name
        self._processor_factory = processor_factory
        self._task_kwargs = task_kwargs or {}

    @classmethod
    def create(cls, name: str, scribe: ScribeStore, input_category: str,
               processor_factory, **task_kwargs: Any) -> "StylusJob":
        """One task per bucket; ``processor_factory()`` builds each processor."""
        num_buckets = scribe.category(input_category).num_buckets
        tasks = [
            StylusTask(f"{name}[{bucket}]", scribe, input_category, bucket,
                       processor_factory(), **task_kwargs)
            for bucket in range(num_buckets)
        ]
        return cls(name, tasks, scribe=scribe,
                   input_category_name=input_category,
                   processor_factory=processor_factory,
                   task_kwargs=task_kwargs)

    # -- the autoscaler contract (paper Sections 6.4 and 7) ------------------

    def input_category(self) -> str:
        if self._input_category is None:
            raise CheckpointError(
                f"job {self.name!r} was not built via StylusJob.create"
            )
        return self._input_category

    def grow_to_buckets(self) -> int:
        """Create tasks for buckets added by a category resize.

        This is how "changing the parallelism is often just changing the
        number of Scribe buckets and restarting the nodes" plays out: the
        category grows, new tasks attach to the new buckets, existing
        tasks keep their positions.
        """
        category = self._scribe.category(self.input_category())
        for bucket in range(len(self.tasks), category.num_buckets):
            self.tasks.append(StylusTask(
                f"{self.name}[{bucket}]", self._scribe,
                self._input_category, bucket, self._processor_factory(),
                **self._task_kwargs,
            ))
        return len(self.tasks)

    def pump(self, max_messages: int = 1000) -> int:
        return sum(task.pump(max_messages) for task in self.tasks)

    def lag_messages(self) -> int:
        return sum(task.lag_messages() for task in self.tasks)

    def checkpoint_now(self) -> None:
        for task in self.tasks:
            task.checkpoint_now()

    def low_watermark(self, confidence: float = 0.99) -> float | None:
        """The job-wide low watermark: the min across tasks."""
        marks = [task.low_watermark(confidence) for task in self.tasks]
        marks = [mark for mark in marks if mark is not None]
        return min(marks) if marks else None
