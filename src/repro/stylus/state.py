"""State-saving backends for Stylus (paper Section 4.4).

Three backends, matching the paper's inventory:

- :class:`InMemoryStateBackend` — a reliable checkpoint service (think
  HBase row per task); the baseline used by the semantics experiments.
- :class:`LocalDbStateBackend` — RocksDB embedded in the process
  (Figure 10): fast local writes, WAL recovery after a process crash,
  asynchronous HDFS backups for machine failure.
- :class:`RemoteDbStateBackend` — ZippyDB (Figure 11): state that can
  exceed one machine's memory and fast failover, at per-operation network
  cost; supports the read-modify-write and the append-only (merge
  operator) write modes compared in Figure 12.

The engine drives backends through two-phase primitives (``save_state``
then ``save_offset``, or the reverse, or ``save_atomic``) so that the
checkpoint *ordering* — which is what defines the semantics, Section
4.3.1 — is explicit and crash-injectable between the phases.
"""

from __future__ import annotations

import copy
import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import CheckpointError
from repro.storage.backup import BackupEngine
from repro.storage.lsm import LsmStore
from repro.storage.merge import MergeOperator
from repro.storage.zippydb import ZippyDb


class RemoteWriteMode(enum.Enum):
    """How monoid partial states reach the remote database (Figure 12)."""

    READ_MODIFY_WRITE = "read-modify-write"
    APPEND_ONLY = "append-only"


@dataclass(frozen=True)
class RecoveryCost:
    """What a recovery cost, in modeled seconds and entries replayed."""

    seconds: float
    entries: int
    source: str


class StateBackend(ABC):
    """Durable storage for a task's state, offset, and monoid partials."""

    # -- two-phase checkpoint primitives -------------------------------------

    @abstractmethod
    def save_state(self, state: Any) -> None:
        """Persist the in-memory state snapshot."""

    @abstractmethod
    def save_offset(self, offset: int) -> None:
        """Persist the input-stream offset."""

    @abstractmethod
    def save_atomic(self, state: Any, offset: int) -> None:
        """Persist state and offset atomically (exactly-once support)."""

    @abstractmethod
    def load(self) -> tuple[Any, int | None]:
        """Return (state, offset) as last persisted; (None, None) if new."""

    # -- monoid partial-state flushing ------------------------------------------

    def flush_partials(self, partials: Mapping[str, Any],
                       operator: MergeOperator) -> None:
        """Merge per-key partial states into the durable full state."""
        raise CheckpointError(
            f"{type(self).__name__} does not support monoid partials"
        )

    def read_value(self, key: str) -> Any:
        """Read one key of the merged durable state (serving / joins)."""
        raise CheckpointError(
            f"{type(self).__name__} does not support keyed reads"
        )

    # -- exactly-once support ------------------------------------------------
    #
    # Exactly-once output semantics require the receiver to be a
    # transactional data store (Section 4.3.1): the output value(s) commit
    # in the same transaction as the state and offset. Outputs are keyed
    # by checkpoint index so a replayed commit is idempotent.

    def save_atomic_with_outputs(self, state: Any, offset: int,
                                 outputs: list, checkpoint_index: int) -> None:
        """Atomically persist state, offset, and the pending output."""
        raise CheckpointError(
            f"{type(self).__name__} does not support transactional output"
        )

    def flush_partials_atomic(self, partials: Mapping[str, Any],
                              operator: MergeOperator, offset: int,
                              outputs: list, checkpoint_index: int) -> None:
        """Atomically merge partials and persist offset plus output."""
        raise CheckpointError(
            f"{type(self).__name__} does not support transactional "
            "monoid flushes"
        )

    def last_checkpoint_index(self) -> int:
        """Index of the newest durable checkpoint (0 when none).

        Tasks resume numbering from here after a restart or a shard
        adoption. A backend that stores committed output keyed by
        checkpoint index MUST derive this from durable data, not from
        instance memory: a freshly adopted task that restarted at index
        0 would overwrite the previous owner's committed output rows.
        """
        return 0

    def committed_outputs(self) -> list:
        """Every output committed transactionally, in checkpoint order."""
        raise CheckpointError(
            f"{type(self).__name__} does not store transactional output"
        )


class InMemoryStateBackend(StateBackend):
    """A plain reliable checkpoint slot (survives process crashes).

    Stands in for "save checkpoints to a database" when the experiment
    does not care which database: the semantics experiments of Figure 7
    use it so the only variable is the checkpoint *ordering*.
    """

    def __init__(self, name: str = "task") -> None:
        self.name = name
        self._state: Any = None
        self._offset: int | None = None
        self._values: dict[str, Any] = {}
        self._outputs: dict[int, list] = {}

    def save_state(self, state: Any) -> None:
        self._state = copy.deepcopy(state)

    def save_offset(self, offset: int) -> None:
        self._offset = offset

    def save_atomic(self, state: Any, offset: int) -> None:
        self._state = copy.deepcopy(state)
        self._offset = offset

    def load(self) -> tuple[Any, int | None]:
        return copy.deepcopy(self._state), self._offset

    def flush_partials(self, partials: Mapping[str, Any],
                       operator: MergeOperator) -> None:
        for key, delta in partials.items():
            base = self._values.get(key)
            self._values[key] = operator.full_merge(base, [delta])

    def read_value(self, key: str) -> Any:
        return copy.deepcopy(self._values.get(key))

    def save_atomic_with_outputs(self, state: Any, offset: int,
                                 outputs: list, checkpoint_index: int) -> None:
        self._state = copy.deepcopy(state)
        self._offset = offset
        self._outputs[checkpoint_index] = [o.record for o in outputs]

    def flush_partials_atomic(self, partials: Mapping[str, Any],
                              operator: MergeOperator, offset: int,
                              outputs: list, checkpoint_index: int) -> None:
        self.flush_partials(partials, operator)
        self._offset = offset
        self._outputs[checkpoint_index] = [o.record for o in outputs]

    def committed_outputs(self) -> list:
        result = []
        for index in sorted(self._outputs):
            result.extend(self._outputs[index])
        return result

    def last_checkpoint_index(self) -> int:
        return max(self._outputs, default=0)


class LocalDbStateBackend(StateBackend):
    """State in an embedded LSM store with asynchronous HDFS backups.

    The LSM's disk namespace should be the owning machine's ``disk`` dict
    so the failure model composes: a process crash keeps the local DB
    (recovery replays only the WAL tail), a machine failure loses it
    (recovery restores the last HDFS snapshot, losing the delta — which
    at-least-once replay from Scribe then regenerates).
    """

    #: Modeled recovery costs (seconds): WAL replay is per record; an HDFS
    #: restore pays a fixed mount plus per-entry transfer. Used only for
    #: reporting, never for control flow.
    WAL_REPLAY_PER_RECORD = 1e-5
    HDFS_RESTORE_FIXED = 2.0
    HDFS_RESTORE_PER_ENTRY = 1e-4

    def __init__(self, name: str, disk: dict[str, Any],
                 backup_engine: BackupEngine | None = None,
                 merge_operator: MergeOperator | None = None) -> None:
        self.name = name
        self.backup_engine = backup_engine
        self.merge_operator = merge_operator
        self._store = LsmStore(disk=disk, name=name,
                               merge_operator=merge_operator)
        self.last_recovery: RecoveryCost | None = None

    @property
    def store(self) -> LsmStore:
        return self._store

    @classmethod
    def adopt(cls, name: str, disk: dict[str, Any],
              backup_engine: BackupEngine,
              merge_operator: MergeOperator | None = None,
              backup_id: int | None = None) -> "LocalDbStateBackend":
        """Build a backend on a (possibly new) machine from an HDFS backup.

        The shard-handoff path: the releasing owner snapshotted the
        store, the adopter materializes it here. Same mechanics as
        :meth:`recover_after_machine_failure`, but as a constructor —
        the adopter never had a store object to begin with. Raises
        :class:`~repro.errors.BackupNotFound` when no snapshot exists.
        """
        backend = cls(name, disk, backup_engine=backup_engine,
                      merge_operator=merge_operator)
        backend._store = backup_engine.restore(
            name, disk, backup_id=backup_id, merge_operator=merge_operator
        )
        entries = backend._store.approximate_key_count()
        backend.last_recovery = RecoveryCost(
            cls.HDFS_RESTORE_FIXED + entries * cls.HDFS_RESTORE_PER_ENTRY,
            entries, "hdfs-backup",
        )
        return backend

    # -- checkpoint primitives --------------------------------------------------

    def save_state(self, state: Any) -> None:
        self._store.put("__state__", copy.deepcopy(state))

    def save_offset(self, offset: int) -> None:
        self._store.put("__offset__", offset)

    def save_atomic(self, state: Any, offset: int) -> None:
        self._store.write_batch(puts={
            "__state__": copy.deepcopy(state),
            "__offset__": offset,
        })

    def load(self) -> tuple[Any, int | None]:
        return (copy.deepcopy(self._store.get("__state__")),
                self._store.get("__offset__"))

    # -- monoid partials ------------------------------------------------------------

    def flush_partials(self, partials: Mapping[str, Any],
                       operator: MergeOperator) -> None:
        self._store.write_batch(
            merges=[(f"v:{key}", delta) for key, delta in partials.items()]
        )

    def read_value(self, key: str) -> Any:
        return self._store.get(f"v:{key}")

    # -- exactly-once (write_batch is atomic at our failure granularity) --------

    def save_atomic_with_outputs(self, state: Any, offset: int,
                                 outputs: list, checkpoint_index: int) -> None:
        self._store.write_batch(puts={
            "__state__": copy.deepcopy(state),
            "__offset__": offset,
            f"out:{checkpoint_index:012d}": [o.record for o in outputs],
        })

    def flush_partials_atomic(self, partials: Mapping[str, Any],
                              operator: MergeOperator, offset: int,
                              outputs: list, checkpoint_index: int) -> None:
        self._store.write_batch(
            puts={
                "__offset__": offset,
                f"out:{checkpoint_index:012d}": [o.record for o in outputs],
            },
            merges=[(f"v:{key}", delta) for key, delta in partials.items()],
        )

    def committed_outputs(self) -> list:
        result = []
        for _, records in self._store.scan("out:", "out:￿"):
            result.extend(records)
        return result

    def last_checkpoint_index(self) -> int:
        # Derived from the durable rows, so an adopter resumes numbering
        # where the releasing owner stopped instead of overwriting.
        return max((int(key[4:]) for key, _ in
                    self._store.scan("out:", "out:￿")), default=0)

    # -- backup & recovery ----------------------------------------------------------

    def maybe_backup(self) -> bool:
        """Snapshot to HDFS; False if no engine or HDFS unavailable."""
        if self.backup_engine is None:
            return False
        return self.backup_engine.create_backup(self._store) is not None

    def recover_after_process_crash(self) -> RecoveryCost:
        """Restart on the same machine: local DB + WAL replay (fast)."""
        replayed = self._store.recover()
        cost = RecoveryCost(replayed * self.WAL_REPLAY_PER_RECORD,
                            replayed, "local-wal")
        self.last_recovery = cost
        return cost

    def recover_after_machine_failure(self, new_disk: dict[str, Any]) -> RecoveryCost:
        """Re-home onto a new machine: restore the last HDFS snapshot."""
        if self.backup_engine is None:
            raise CheckpointError(
                f"{self.name}: machine lost and no backup engine configured"
            )
        self._store = self.backup_engine.restore(
            self.name, new_disk, merge_operator=self.merge_operator
        )
        entries = self._store.approximate_key_count()
        cost = RecoveryCost(
            self.HDFS_RESTORE_FIXED + entries * self.HDFS_RESTORE_PER_ENTRY,
            entries, "hdfs-backup",
        )
        self.last_recovery = cost
        return cost


class RemoteDbStateBackend(StateBackend):
    """State in a remote ZippyDB-style database (Figure 11).

    "A remote database can hold states that do not fit in memory" and
    "provides faster machine failover time since we do not need to load
    the complete state to the machine upon restart" (Section 4.4.2).
    Failover here is therefore (modeled) constant time.

    ``write_mode`` selects the Figure 12 comparison arm: read-modify-write
    fetches, merges client-side, and writes back; append-only sends merge
    operands and lets the database fold them.
    """

    FAILOVER_FIXED = 0.05  # reconnect; no state transfer needed

    def __init__(self, name: str, db: ZippyDb,
                 write_mode: RemoteWriteMode = RemoteWriteMode.APPEND_ONLY) -> None:
        self.name = name
        self.db = db
        self.write_mode = write_mode
        self.last_recovery: RecoveryCost | None = None

    def _key(self, suffix: str) -> str:
        return f"{self.name}:{suffix}"

    # -- checkpoint primitives ------------------------------------------------------

    def save_state(self, state: Any) -> None:
        self.db.put(self._key("state"), copy.deepcopy(state))

    def save_offset(self, offset: int) -> None:
        self.db.put(self._key("offset"), offset)

    def save_atomic(self, state: Any, offset: int) -> None:
        self.db.commit_transaction(puts={
            self._key("state"): copy.deepcopy(state),
            self._key("offset"): offset,
        })

    def load(self) -> tuple[Any, int | None]:
        state = self.db.get(self._key("state"))
        offset = self.db.get(self._key("offset"))
        return copy.deepcopy(state), offset

    # -- monoid partials --------------------------------------------------------------

    def flush_partials(self, partials: Mapping[str, Any],
                       operator: MergeOperator) -> None:
        if not partials:
            return
        if self.write_mode == RemoteWriteMode.APPEND_ONLY:
            self.db.multi_merge(
                [(self._key(f"v:{key}"), delta)
                 for key, delta in partials.items()]
            )
            return
        # Read-merge-write: fetch current values, fold client-side, write.
        db_keys = {key: self._key(f"v:{key}") for key in partials}
        current = self.db.multi_get(list(db_keys.values()))
        merged = {
            db_key: operator.full_merge(current.get(db_key), [partials[key]])
            for key, db_key in db_keys.items()
        }
        self.db.multi_put(merged)

    def read_value(self, key: str) -> Any:
        return self.db.get(self._key(f"v:{key}"))

    # -- exactly-once (distributed transaction, Section 4.3.2) --------------------

    def save_atomic_with_outputs(self, state: Any, offset: int,
                                 outputs: list, checkpoint_index: int) -> None:
        self.db.commit_transaction(puts={
            self._key("state"): copy.deepcopy(state),
            self._key("offset"): offset,
            self._key("ckpt_index"): checkpoint_index,
            self._key(f"out:{checkpoint_index:012d}"): [
                o.record for o in outputs
            ],
        })

    def flush_partials_atomic(self, partials: Mapping[str, Any],
                              operator: MergeOperator, offset: int,
                              outputs: list, checkpoint_index: int) -> None:
        # Transactions cannot carry merge operands, so exactly-once monoid
        # flushes take the read-merge-write path regardless of write_mode.
        db_keys = {key: self._key(f"v:{key}") for key in partials}
        current = self.db.multi_get(list(db_keys.values())) if db_keys else {}
        puts = {
            db_key: operator.full_merge(current.get(db_key), [partials[key]])
            for key, db_key in db_keys.items()
        }
        puts[self._key("offset")] = offset
        puts[self._key("ckpt_index")] = checkpoint_index
        puts[self._key(f"out:{checkpoint_index:012d}")] = [
            o.record for o in outputs
        ]
        self.db.commit_transaction(puts=puts)

    def committed_outputs(self) -> list:
        # Checkpoint indexes are assigned contiguously from 1, and the
        # newest one rides in every commit, so the rows are enumerable
        # from durable data alone — a failed-over instance sees the same
        # output history its predecessor committed.
        result = []
        for index in range(1, self.last_checkpoint_index() + 1):
            records = self.db.get(self._key(f"out:{index:012d}"))
            if records:
                result.extend(records)
        return result

    def last_checkpoint_index(self) -> int:
        stored = self.db.get(self._key("ckpt_index"))
        return int(stored) if stored is not None else 0

    # -- recovery ---------------------------------------------------------------------

    def recover_failover(self) -> RecoveryCost:
        """Move to a new machine: nothing to load, state stayed remote."""
        cost = RecoveryCost(self.FAILOVER_FIXED, 0, "remote-db")
        self.last_recovery = cost
        return cost
