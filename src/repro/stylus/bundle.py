"""The dual-binary Stylus application bundle (paper Section 4.5.2).

"When a user creates a Stylus application, two binaries are generated at
the same time: one for stream and one for batch." A
:class:`StylusAppBundle` is that pair: one processor definition, from
which :meth:`streaming_job` builds the realtime job and
:meth:`run_batch` builds and runs the right batch shape —

- stateless processor -> custom mapper,
- general stateful processor -> custom reducer keyed by the aggregation
  key (rows time-sorted within each key),
- monoid processor -> map-side partial aggregation with a combiner —

on either batch runtime (Hive/MapReduce or the Spark-style dataset
engine, the Section 7 evaluation).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.backfill import alt_runner, runner
from repro.errors import ConfigError
from repro.scribe.store import ScribeStore
from repro.stylus.engine import StylusJob
from repro.stylus.processor import (
    MonoidProcessor,
    StatefulProcessor,
    StatelessProcessor,
)

Row = dict[str, Any]


class StylusAppBundle:
    """One application definition, two runtimes."""

    def __init__(self, name: str, processor_factory: Callable[[], Any],
                 reduce_key: Callable[[Row], Any] | None = None,
                 time_field: str = "event_time",
                 **stream_kwargs: Any) -> None:
        self.name = name
        self.processor_factory = processor_factory
        self.reduce_key = reduce_key
        self.time_field = time_field
        self.stream_kwargs = stream_kwargs
        sample = processor_factory()
        if isinstance(sample, MonoidProcessor):
            self.kind = "monoid"
        elif isinstance(sample, StatefulProcessor):
            self.kind = "stateful"
            if reduce_key is None:
                raise ConfigError(
                    "a general stateful processor's batch binary needs a "
                    "reduce_key (the aggregation key, Section 4.5.2)"
                )
        elif isinstance(sample, StatelessProcessor):
            self.kind = "stateless"
        else:
            raise ConfigError(
                f"unknown processor type {type(sample).__name__}"
            )

    # -- the stream binary ------------------------------------------------------

    def streaming_job(self, scribe: ScribeStore, input_category: str,
                      **overrides: Any) -> StylusJob:
        kwargs = dict(self.stream_kwargs)
        kwargs.update(overrides)
        kwargs.setdefault("time_field", self.time_field)
        return StylusJob.create(self.name, scribe, input_category,
                                self.processor_factory, **kwargs)

    # -- the batch binary -----------------------------------------------------------

    def run_batch(self, rows: Iterable[Row],
                  runtime: str = "mapreduce") -> Any:
        """Run the batch binary over ``rows`` on the chosen runtime."""
        if runtime not in ("mapreduce", "dataset"):
            raise ConfigError(f"unknown batch runtime {runtime!r}")
        if self.kind == "stateless":
            if runtime == "mapreduce":
                return runner.run_stateless_backfill(
                    self.processor_factory(), rows, self.time_field)
            return alt_runner.run_stateless_backfill_dataset(
                self.processor_factory(), rows, time_field=self.time_field)
        if self.kind == "monoid":
            if runtime == "mapreduce":
                return runner.run_monoid_backfill(
                    self.processor_factory(), rows,
                    time_field=self.time_field)
            return alt_runner.run_monoid_backfill_dataset(
                self.processor_factory(), rows, time_field=self.time_field)
        # stateful
        if runtime == "mapreduce":
            return runner.run_stateful_backfill(
                self.processor_factory, rows, self.reduce_key,
                self.time_field)
        return alt_runner.run_stateful_backfill_dataset(
            self.processor_factory, rows, self.reduce_key,
            time_field=self.time_field)
