"""Stylus: the low-level stream-processing framework (paper Section 2.4).

Stylus is the most general of the three engines: procedural processors
(stateless, stateful, and monoid), every Table 8 semantics combination,
two state-saving mechanisms (local RocksDB-style DB with HDFS backups,
and a remote ZippyDB-style database with the append-only monoid
optimization), watermark estimation, and batch binaries for backfill.
"""

from repro.stylus.bundle import StylusAppBundle
from repro.stylus.checkpointing import CheckpointPolicy, CrashInjector, CrashPoint
from repro.stylus.engine import Strategy, StylusJob, StylusTask
from repro.stylus.processor import (
    MonoidProcessor,
    Output,
    StatefulProcessor,
    StatelessProcessor,
)
from repro.stylus.state import (
    InMemoryStateBackend,
    LocalDbStateBackend,
    RemoteDbStateBackend,
    RemoteWriteMode,
)
from repro.stylus.windowed import WindowedAggregator

__all__ = [
    "CheckpointPolicy",
    "CrashInjector",
    "CrashPoint",
    "InMemoryStateBackend",
    "LocalDbStateBackend",
    "MonoidProcessor",
    "Output",
    "RemoteDbStateBackend",
    "RemoteWriteMode",
    "StatefulProcessor",
    "StatelessProcessor",
    "Strategy",
    "StylusAppBundle",
    "StylusJob",
    "StylusTask",
    "WindowedAggregator",
]
