"""Stream-stream join with watermark-bounded buffers.

The paper's Chorus example joins two live streams (Section 3 pairs a
Filterer with a Joiner; Section 5 discusses the general problem of
joining streams whose events arrive out of order). The processor here
implements the standard interval join: two co-partitioned streams arrive
interleaved on one Scribe category — each record tagged with the stream
it belongs to, bucketed by the join key — and a left/right pair joins
when their event times lie within ``window_seconds`` of each other.

Buffering is the crux. An impression may arrive seconds before or after
its click, so both sides buffer; unbounded buffers would grow forever on
unmatched traffic. The buffers are therefore watermark-bounded: at every
checkpoint, entries older than ``max_event_time - window_seconds`` are
evicted — no future in-window event can match them, by the low-watermark
assumption the engine's estimator quantifies (Section 2.4). Evicted
left-side entries that never matched can optionally be emitted as
``unmatched`` records (impressions with no click are exactly what an ads
pipeline bills on).

State is plain serializable data (dicts and lists), so every semantics
policy and the checkpoint machinery apply unchanged: the join is as
crash-recoverable as any counter.
"""

from __future__ import annotations

from typing import Any

from repro.core.event import Event
from repro.errors import ConfigError, ProcessingError
from repro.stylus.processor import Output, StatefulProcessor


class StreamStreamJoinProcessor(StatefulProcessor):
    """Interval join of two co-partitioned streams on one category.

    Records carry the side they belong to in ``stream_field``; the join
    key is ``key_field`` (also the Scribe shard key, so both sides of a
    key land in the same bucket). Joined outputs carry the key, the
    later of the two event times, and both sides' remaining fields
    prefixed ``left_`` / ``right_``.
    """

    def __init__(self, left_stream: str, right_stream: str, key_field: str,
                 window_seconds: float, stream_field: str = "stream",
                 emit_unmatched_left: bool = False) -> None:
        if window_seconds <= 0:
            raise ConfigError("window_seconds must be > 0")
        if left_stream == right_stream:
            raise ConfigError("join sides must be distinct streams")
        self.left_stream = left_stream
        self.right_stream = right_stream
        self.key_field = key_field
        self.window_seconds = window_seconds
        self.stream_field = stream_field
        self.emit_unmatched_left = emit_unmatched_left

    # -- StatefulProcessor contract -----------------------------------------

    def initial_state(self) -> dict[str, Any]:
        # Buffer entries are [event_time, fields, matched] triples in
        # arrival order; plain lists so checkpoints serialize them.
        return {"left": {}, "right": {}, "max_event_time": None}

    def process(self, event: Event, state: dict[str, Any]) -> list[Output]:
        side = event[self.stream_field]
        if side == self.left_stream:
            own, other = "left", "right"
        elif side == self.right_stream:
            own, other = "right", "left"
        else:
            raise ProcessingError(
                f"event stream {side!r} is neither "
                f"{self.left_stream!r} nor {self.right_stream!r}"
            )
        key = str(event[self.key_field])
        event_time = event.event_time
        fields = {name: value for name, value in event.fields.items()
                  if name not in (self.stream_field, self.key_field)}
        entry = [event_time, fields, False]

        outputs: list[Output] = []
        for candidate in state[other].get(key, ()):
            if abs(event_time - candidate[0]) <= self.window_seconds:
                candidate[2] = True
                entry[2] = True
                if own == "left":
                    outputs.append(self._joined(key, entry, candidate))
                else:
                    outputs.append(self._joined(key, candidate, entry))
        state[own].setdefault(key, []).append(entry)

        high = state["max_event_time"]
        if high is None or event_time > high:
            state["max_event_time"] = event_time
        return outputs

    def on_checkpoint(self, state: dict[str, Any],
                      now: float) -> list[Output]:
        """Evict entries no future in-window event can match."""
        high = state["max_event_time"]
        if high is None:
            return []
        horizon = high - self.window_seconds
        outputs: list[Output] = []
        for side in ("left", "right"):
            buffers = state[side]
            for key in list(buffers):
                entries = buffers[key]
                kept = [entry for entry in entries if entry[0] >= horizon]
                if self.emit_unmatched_left and side == "left":
                    for event_time, fields, matched in entries:
                        if event_time < horizon and not matched:
                            record = dict(fields)
                            record["event_time"] = event_time
                            record[self.key_field] = key
                            record["unmatched"] = True
                            outputs.append(Output(record, key=key))
                if kept:
                    buffers[key] = kept
                else:
                    del buffers[key]
        return outputs

    # -- helpers -------------------------------------------------------------

    def _joined(self, key: str, left: list, right: list) -> Output:
        record: dict[str, Any] = {
            "event_time": max(left[0], right[0]),
            self.key_field: key,
            "left_event_time": left[0],
            "right_event_time": right[0],
        }
        for name, value in left[1].items():
            record[f"left_{name}"] = value
        for name, value in right[1].items():
            record[f"right_{name}"] = value
        return Output(record, key=key)

    # -- observability --------------------------------------------------------

    @staticmethod
    def buffered_entries(state: dict[str, Any]) -> int:
        """How many records the buffers currently hold (both sides)."""
        return sum(len(entries)
                   for side in ("left", "right")
                   for entries in state[side].values())
