"""Stylus processor interfaces.

"Stylus provides three types of processors: a stateless processor, a
general stateful processor, and a monoid stream processor"
(Section 4.5.2). All three are defined here; the engine in
:mod:`repro.stylus.engine` runs any of them with any supported
semantics policy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.event import Event
from repro.storage.merge import MergeOperator


@dataclass(frozen=True)
class Output:
    """One unit of processor output.

    ``record`` is the serializable payload; ``key`` is the shard key the
    downstream category partitions on (re-sharding between DAG nodes is
    just emitting with a different key — Figure 3).
    """

    record: Mapping[str, Any]
    key: str | None = None


class StatelessProcessor(ABC):
    """Pure event-in, outputs-out transformation (filter, project, join).

    The Filterer and Joiner of Figure 3 are stateless: they keep no
    cross-event state, so only output semantics apply to them.
    """

    @abstractmethod
    def process(self, event: Event) -> list[Output]:
        """Transform one event into zero or more outputs."""


class StatefulProcessor(ABC):
    """Processor with explicit in-memory state (the Scorer of Figure 3).

    The engine owns the state's lifecycle: it calls :meth:`initial_state`
    on first start, passes the state to every :meth:`process` call (which
    may mutate it), snapshots it at checkpoints, and restores it after a
    failure according to the configured state semantics.
    """

    @abstractmethod
    def initial_state(self) -> Any:
        """A fresh state for a brand-new task (must be copyable)."""

    @abstractmethod
    def process(self, event: Event, state: Any) -> list[Output]:
        """Fold one event into ``state``; return immediate outputs."""

    def process_batch(self, events: list[Event], state: Any) -> list[Output]:
        """Fold many events into ``state``; outputs are concatenated.

        Must be observationally equivalent to calling :meth:`process`
        once per event, in order. The default does exactly that;
        processors with per-event overhead worth amortizing (state
        lookups, attribute resolution) override it.
        """
        outputs: list[Output] = []
        extend = outputs.extend
        process = self.process
        for event in events:
            extend(process(event, state))
        return outputs

    def on_checkpoint(self, state: Any, now: float) -> list[Output]:
        """Periodic outputs generated at checkpoint time.

        The Counter Node of Figure 6 emits its counter value here ("every
        few seconds, it emits the counter value to a (timewindow, counter)
        output stream"). Default: nothing.
        """
        return []


class MonoidProcessor(ABC):
    """Keyed aggregation whose state forms a monoid (Section 4.4.2).

    "When a monoid processor's application needs to access state that is
    not in memory, mutations are applied to an empty state (the identity
    element)" — the engine keeps only *partial* per-key states in memory
    and lets the state backend merge them into the full state, either by
    read-merge-write or (when the remote database supports a custom merge
    operator) by appending operands.
    """

    @abstractmethod
    def merge_operator(self) -> MergeOperator:
        """The monoid: identity element plus associative merge."""

    @abstractmethod
    def extract(self, event: Event) -> list[tuple[str, Any]]:
        """Map an event to (key, delta) pairs folded into the state.

        One event may touch many keys — the Figure 12 workload
        "aggregates its input events across many dimensions".
        """

    def on_checkpoint(self, partials: Mapping[str, Any],
                      now: float) -> list[Output]:
        """Periodic outputs computed from the in-memory partial states."""
        return []
