"""Watermark-driven windowed aggregation for Stylus.

Section 2.4: Stylus "must handle imperfect ordering in its input
streams" and "provides a function to estimate the event time low
watermark with a given confidence interval". This module is the piece
that *uses* that estimate: a stateful processor that assigns events to
event-time windows, keeps per-window monoid aggregates, and emits a
window's finalized result only once the low watermark passes the window
end — so out-of-order events land in the right window and late
stragglers beyond the confidence level are counted and dropped.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.event import Event
from repro.core.windows import TumblingWindow, aligned_start
from repro.errors import ConfigError
from repro.storage.merge import MergeOperator
from repro.stylus.processor import Output, StatefulProcessor

KeyExtractor = Callable[[Event], list[tuple[str, Any]]]


class WindowedAggregator(StatefulProcessor):
    """Tumbling-window keyed aggregation with watermark-closed windows.

    ``extract`` maps an event to (key, delta) pairs; ``operator`` folds
    deltas per (window, key). At every checkpoint the processor computes
    its low watermark at ``confidence``; windows that end before it are
    *closed*: their finalized rows are emitted exactly once, then their
    state is dropped. Events older than an already-closed window are
    counted in ``state["late_events"]`` and otherwise ignored — the
    watermark's confidence level is precisely the knob that trades
    emission latency against stragglers.
    """

    def __init__(self, window_seconds: float, operator: MergeOperator,
                 extract: KeyExtractor, confidence: float = 0.99,
                 sample_size: int = 512) -> None:
        if window_seconds <= 0:
            raise ConfigError("window_seconds must be positive")
        if not 0.0 < confidence <= 1.0:
            raise ConfigError("confidence must be in (0, 1]")
        self.window = TumblingWindow(window_seconds)
        self.operator = operator
        self.extract = extract
        self.confidence = confidence
        self.sample_size = sample_size

    # -- the StatefulProcessor surface ------------------------------------

    def initial_state(self) -> dict[str, Any]:
        return {
            "windows": {},       # window_start -> {key -> folded value}
            "closed_before": None,  # every window ending here is emitted
            "late_events": 0,
            "max_seen": None,        # newest event time observed
            "lateness_sample": [],   # arrival-ordered recent lateness values
        }

    def process(self, event: Event, state: dict[str, Any]) -> list[Output]:
        window = self.window.window_containing(event.event_time)
        closed_before = state["closed_before"]
        if closed_before is not None and window.end <= closed_before:
            state["late_events"] += 1
            return []
        max_seen = state["max_seen"]
        if max_seen is None or event.event_time > max_seen:
            max_seen = event.event_time
            state["max_seen"] = max_seen
        sample = state["lateness_sample"]
        sample.append(max_seen - event.event_time)
        if len(sample) > self.sample_size:
            del sample[:len(sample) - self.sample_size]
        per_key = state["windows"].setdefault(window.start, {})
        for key, delta in self.extract(event):
            base = per_key.get(key)
            per_key[key] = (delta if base is None
                            else self.operator.merge(base, delta))
        return []

    def process_batch(self, events: list[Event],
                      state: dict[str, Any]) -> list[Output]:
        """Batched :meth:`process`: one state-dict walk for many events.

        The per-event path pays dict lookups into ``state`` and a sample
        trim on every call; here the hot values live in locals for the
        whole batch and the sample is trimmed once at the end (dropping
        from the front only, so the surviving tail — and therefore the
        watermark estimate — is identical to per-event trimming).
        """
        if not events:
            return []
        size = self.window.size
        extract = self.extract
        merge = self.operator.merge
        windows = state["windows"]
        closed_before = state["closed_before"]
        max_seen = state["max_seen"]
        sample = state["lateness_sample"]
        sample_append = sample.append
        late = 0
        for event in events:
            event_time = event.event_time
            window_start = aligned_start(event_time, size)
            if closed_before is not None and window_start + size <= closed_before:
                late += 1
                continue
            if max_seen is None or event_time > max_seen:
                max_seen = event_time
            sample_append(max_seen - event_time)
            per_key = windows.get(window_start)
            if per_key is None:
                windows[window_start] = per_key = {}
            for key, delta in extract(event):
                base = per_key.get(key)
                per_key[key] = (delta if base is None
                                else merge(base, delta))
        state["max_seen"] = max_seen
        if late:
            state["late_events"] += late
        if len(sample) > self.sample_size:
            del sample[:len(sample) - self.sample_size]
        return []

    def on_checkpoint(self, state: dict[str, Any], now: float) -> list[Output]:
        """Close every window the low watermark has passed."""
        mark = self._low_watermark(state)
        if mark is None:
            return []
        outputs: list[Output] = []
        for window_start in sorted(state["windows"]):
            window_end = window_start + self.window.size
            if window_end > mark:
                break  # newer windows are still open
            for key, value in sorted(state["windows"][window_start].items()):
                outputs.append(Output(
                    {"event_time": window_end, "window_start": window_start,
                     "key": key, "value": value, "final": True},
                    key=key,
                ))
            del state["windows"][window_start]
            previous = state["closed_before"]
            state["closed_before"] = (window_end if previous is None
                                      else max(previous, window_end))
        return outputs

    def _low_watermark(self, state: dict[str, Any]) -> float | None:
        """``max_seen - q_confidence(lateness)``, from checkpointable state.

        Same estimate as :class:`LatenessWatermarkEstimator`, computed
        from the plain lists kept in the processor state so the
        watermark survives checkpoints and restarts.
        """
        if state["max_seen"] is None:
            return None
        sample = sorted(state["lateness_sample"])
        if not sample:
            return state["max_seen"]
        rank = min(len(sample) - 1,
                   int(self.confidence * (len(sample) - 1) + 0.9999))
        return state["max_seen"] - sample[rank]

    # -- inspection helpers --------------------------------------------------

    @staticmethod
    def open_windows(state: dict[str, Any]) -> list[float]:
        return sorted(state["windows"])

    @staticmethod
    def late_events(state: dict[str, Any]) -> int:
        return state["late_events"]
