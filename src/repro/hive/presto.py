"""Presto stand-in: SQL queries over Hive (paper Section 2.7).

"Presto provides full ANSI SQL queries over data stored in Hive. Query
results change only once a day, after new data is loaded. They can then
be sent to Laser for access by products and realtime stream
processors."

Rather than a second SQL implementation, the engine reuses the PQL
front-end: a bare ``SELECT`` is wrapped into a synthetic program bound
to the Hive table's inferred schema, compiled by the Puma planner, and
executed through the batch (MapReduce/UDAF) path over landed
partitions. :meth:`PrestoEngine.publish_to_laser` completes the paper's
loop from daily query results back into the realtime world.
"""

from __future__ import annotations

from typing import Any

from repro.errors import HiveError
from repro.hive.warehouse import HiveTable, HiveWarehouse
from repro.laser.service import LaserTable
from repro.puma.hive_udf import run_puma_backfill
from repro.puma.parser import parse
from repro.puma.planner import plan

Row = dict[str, Any]


class PrestoEngine:
    """Daily SQL over the warehouse, with result publication to Laser."""

    def __init__(self, warehouse: HiveWarehouse) -> None:
        self.warehouse = warehouse

    # -- schema inference ---------------------------------------------------

    @staticmethod
    def _infer_columns(table: HiveTable, days: list[int] | None) -> list[str]:
        columns: set[str] = set()
        sampled = 0
        for row in table.scan(days):
            columns.update(row.keys())
            sampled += 1
            if sampled >= 100:
                break
        if not columns:
            raise HiveError(
                f"cannot infer a schema: table {table.name!r} has no "
                "landed rows in the requested partitions"
            )
        ordered = sorted(columns - {table.time_column})
        return [table.time_column] + ordered

    # -- querying -------------------------------------------------------------

    def query(self, table_name: str, select_sql: str,
              days: list[int] | None = None) -> list[Row]:
        """Run a bare ``SELECT ... FROM <table_name> ...`` over Hive.

        Only landed partitions are visible — "each partition becomes
        available after the day ends at midnight" — so results change
        once a day, exactly as the paper describes.
        """
        table = self.warehouse.table(table_name)
        columns = self._infer_columns(table, days)
        program = (
            "CREATE APPLICATION presto_query;\n"
            f"CREATE INPUT TABLE {table_name}({', '.join(columns)})\n"
            f'FROM SCRIBE("__presto__") TIME {table.time_column};\n'
            f"CREATE TABLE result AS {select_sql};"
        )
        app_plan = plan(parse(program))
        rows = list(table.scan(days))
        return run_puma_backfill(app_plan, "result", rows)

    # -- publication (the dashed Laser arrows of Figure 1) ------------------------

    def publish_to_laser(self, rows: list[Row], laser_table: LaserTable
                         ) -> int:
        """Send query results to Laser 'for access by products and
        realtime stream processors'. Returns rows published."""
        for row in rows:
            laser_table.put_row(row)
        return len(rows)
