"""Day-partitioned tables and Scribe ingestion for the warehouse."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import HiveError, PartitionNotReady
from repro.scribe.reader import CategoryReader
from repro.scribe.store import ScribeStore

Row = dict[str, Any]

SECONDS_PER_DAY = 86_400.0


def day_of(event_time: float) -> int:
    """The day index (floor of event time / 86400) a row lands in."""
    return int(event_time // SECONDS_PER_DAY)


@dataclass
class HivePartition:
    """One day's rows for one table."""

    day: int
    rows: list[Row] = field(default_factory=list)
    landed: bool = False  # becomes True "after the day ends at midnight"

    @property
    def row_count(self) -> int:
        return len(self.rows)


class HiveTable:
    """A table of day partitions."""

    def __init__(self, name: str, time_column: str = "event_time") -> None:
        self.name = name
        self.time_column = time_column
        self._partitions: dict[int, HivePartition] = {}

    def append(self, row: Row) -> None:
        event_time = row.get(self.time_column)
        if event_time is None:
            raise HiveError(
                f"row lacks time column {self.time_column!r} for table "
                f"{self.name!r}"
            )
        day = day_of(float(event_time))
        partition = self._partitions.setdefault(day, HivePartition(day))
        if partition.landed:
            raise HiveError(
                f"partition day={day} of {self.name!r} already landed; "
                "late rows must go through a backfill"
            )
        partition.rows.append(row)

    def land_partitions_before(self, now: float) -> list[int]:
        """Mark every partition whose day has fully ended as available."""
        current_day = day_of(now)
        landed = []
        for day, partition in self._partitions.items():
            if day < current_day and not partition.landed:
                partition.landed = True
                landed.append(day)
        return sorted(landed)

    def partition(self, day: int, allow_unlanded: bool = False) -> HivePartition:
        if day not in self._partitions:
            raise PartitionNotReady(
                f"{self.name!r} has no partition for day {day}"
            )
        partition = self._partitions[day]
        if not partition.landed and not allow_unlanded:
            raise PartitionNotReady(
                f"partition day={day} of {self.name!r} has not landed yet"
            )
        return partition

    def days(self, landed_only: bool = True) -> list[int]:
        return sorted(
            day for day, partition in self._partitions.items()
            if partition.landed or not landed_only
        )

    def scan(self, days: list[int] | None = None) -> Iterator[Row]:
        """Rows from the given landed partitions (all landed if None)."""
        for day in (days if days is not None else self.days()):
            yield from self.partition(day).rows

    def row_count(self) -> int:
        return sum(p.row_count for p in self._partitions.values())


class HiveWarehouse:
    """The warehouse: tables plus Scribe ingestion tails.

    ``ingest_from_scribe`` registers a tail from a category into a table;
    :meth:`pump` advances every tail (this is the "raw event data
    ingested from Scribe" half of the warehouse).
    """

    def __init__(self, scribe: ScribeStore) -> None:
        self.scribe = scribe
        self.name = "hive"
        self._tables: dict[str, HiveTable] = {}
        self._tails: list[tuple[CategoryReader, HiveTable]] = []

    def create_table(self, name: str,
                     time_column: str = "event_time") -> HiveTable:
        if name in self._tables:
            raise HiveError(f"table {name!r} already exists")
        table = HiveTable(name, time_column)
        self._tables[name] = table
        return table

    def table(self, name: str) -> HiveTable:
        if name not in self._tables:
            raise HiveError(f"no table named {name!r}")
        return self._tables[name]

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def ingest_from_scribe(self, category: str, table_name: str) -> None:
        table = (self._tables.get(table_name)
                 or self.create_table(table_name))
        self._tails.append((CategoryReader(self.scribe, category), table))

    def pump(self, max_messages: int = 1000) -> int:
        """Advance ingestion tails; returns rows ingested."""
        ingested = 0
        for reader, table in self._tails:
            for message in reader.read_batch(max_messages):
                table.append(message.decode())
                ingested += 1
        return ingested

    def land_partitions(self) -> dict[str, list[int]]:
        """Run 'midnight': land every complete day in every table."""
        now = self.scribe.clock.now()
        return {
            name: table.land_partitions_before(now)
            for name, table in self._tables.items()
        }

    # -- simple batch queries (the Presto role, greatly reduced) -----------------

    def aggregate(self, table_name: str, days: list[int],
                  key_fn: Callable[[Row], Any],
                  value_fn: Callable[[Row], float] = lambda row: 1.0
                  ) -> dict[Any, float]:
        """Grouped sum over landed partitions (daily-pipeline style)."""
        totals: dict[Any, float] = {}
        for row in self.table(table_name).scan(days):
            key = key_fn(row)
            totals[key] = totals.get(key, 0.0) + value_fn(row)
        return totals
