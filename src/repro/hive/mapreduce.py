"""A miniature MapReduce framework for backfill.

"To reprocess older data, we use the standard MapReduce framework to
read from Hive and run the stream processing applications in our batch
environment" (Section 4.5.2). The framework supports exactly the three
shapes the paper's Stylus batch binaries take:

- a **custom mapper** (stateless processors),
- a **custom reducer** keyed by aggregation key plus event timestamp
  (general stateful processors),
- **map-side partial aggregation with a combiner** (monoid processors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

Row = dict[str, Any]
KeyValue = tuple[Any, Any]

Mapper = Callable[[Row], Iterable[KeyValue]]
Reducer = Callable[[Any, list[Any]], Iterable[Row]]
Combiner = Callable[[Any, list[Any]], Any]


@dataclass
class MapReduceJob:
    """One job specification.

    ``num_map_tasks`` splits the input to model map-side parallelism —
    with a combiner, each map task pre-aggregates its own slice, which is
    the monoid optimization ("the batch binary for monoid processors can
    be optimized to do partial aggregation in the map phase").
    """

    mapper: Mapper
    reducer: Reducer
    combiner: Combiner | None = None
    num_map_tasks: int = 4


def run_map_reduce(job: MapReduceJob, rows: Iterable[Row]) -> list[Row]:
    """Execute the job over ``rows``; returns reducer output rows."""
    rows = list(rows)
    splits = _split(rows, job.num_map_tasks)

    # Map phase (optionally with per-task combining).
    intermediate: dict[Any, list[Any]] = {}
    for split in splits:
        task_output: dict[Any, list[Any]] = {}
        for row in split:
            for key, value in job.mapper(row):
                task_output.setdefault(key, []).append(value)
        if job.combiner is not None:
            for key, values in task_output.items():
                intermediate.setdefault(key, []).append(
                    job.combiner(key, values)
                )
        else:
            for key, values in task_output.items():
                intermediate.setdefault(key, []).extend(values)

    # Shuffle is implicit (the dict); reduce in sorted key order so the
    # output is deterministic.
    output: list[Row] = []
    for key in sorted(intermediate, key=_sort_key):
        output.extend(job.reducer(key, intermediate[key]))
    return output


def _split(rows: list[Row], pieces: int) -> list[list[Row]]:
    if not rows:
        return [[]]
    pieces = max(1, min(pieces, len(rows)))
    size = (len(rows) + pieces - 1) // pieces
    return [rows[i:i + size] for i in range(0, len(rows), size)]


def _sort_key(key: Any) -> str:
    return repr(key)
