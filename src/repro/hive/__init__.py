"""Hive: the day-partitioned batch warehouse (paper Section 2.7).

"Most event tables in Hive are partitioned by day: each partition
becomes available after the day ends at midnight." The warehouse ingests
from Scribe (so streams have long-term retention, Section 4.5.2) and
serves as the substrate for backfill: the MapReduce mini-framework here
runs the *same* Puma and Stylus application code over old partitions.
"""

from repro.hive.mapreduce import MapReduceJob, run_map_reduce
from repro.hive.warehouse import HivePartition, HiveTable, HiveWarehouse

__all__ = [
    "HivePartition",
    "HiveTable",
    "HiveWarehouse",
    "MapReduceJob",
    "run_map_reduce",
]
