"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs cannot build. Keeping an explicit ``setup.py``
lets ``pip install -e .`` take the legacy ``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Realtime Data Processing at Facebook' "
        "(SIGMOD 2016): Scribe, Puma, Swift, Stylus, Laser, Scuba, and "
        "Hive on a deterministic simulated cluster."
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
